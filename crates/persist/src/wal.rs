//! The per-shard write-ahead log: length-prefixed, checksummed records
//! of insert/delete batches applied since the last snapshot.
//!
//! ## Record layout
//!
//! ```text
//! payload_len u32 | crc32(payload) u32 | payload…
//! payload = seq u64 | kind u8 | body
//! ```
//!
//! Recovery semantics are the standard WAL contract: records are read in
//! file order until the first invalid one (short header, short payload,
//! checksum mismatch, undecodable body). A torn tail — the record that
//! was mid-write when the process died — therefore truncates cleanly
//! instead of failing recovery; everything before it replays.

use crate::codec::{
    crc32, read_bytes, read_u64, read_u8, read_usize, write_bytes, write_u64, write_u8, write_usize,
};
use crate::error::PersistError;
use dyndex_obs::{Counter, FlightRecorder, Histogram, MetricsRegistry, Span, SpanKind, Unit};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_INGEST: u8 = 3;

/// When the write-ahead log fsyncs, trading mutation latency for
/// power-failure durability. Plain appends always reach the OS before
/// the mutation returns (process-crash durable); the policy decides how
/// often the OS buffer is forced to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record: no acknowledged mutation is
    /// ever lost to a power failure, at one fsync per logged batch.
    PerRecord,
    /// Group commit: fsync once every `n` appended records (an `n` of 0
    /// or 1 behaves like [`SyncPolicy::PerRecord`]). A power failure can
    /// lose at most the last `n-1` acknowledged records per shard.
    EveryN(u32),
    /// Never fsync on append (the default, and the historical
    /// behavior): appends survive process crashes only; power-failure
    /// durability comes from committed snapshots and explicit
    /// `sync_wal()` calls.
    #[default]
    OnSnapshot,
    /// Group commit with a staleness bound: fsync once every `every`
    /// appended records **or** once `max_delay` has elapsed since the
    /// first un-synced record, whichever comes first. The deadline is
    /// checked on each append (no timer thread); an idle tail is covered
    /// by `sync_wal()`, close, and drop, like [`SyncPolicy::EveryN`].
    /// This is the bulk-ingest-friendly policy: a fast writer pays one
    /// fsync per `every` records, a slow writer never leaves an
    /// acknowledged record un-synced longer than `max_delay` plus one
    /// append gap.
    Batched {
        /// fsync after this many un-synced records (0/1 degenerate to
        /// per-record).
        every: u32,
        /// Upper bound on how long the first un-synced record may wait
        /// before the next append forces the group to disk.
        max_delay: Duration,
    },
}

/// Write-ahead-log tunables (see [`SyncPolicy`]).
///
/// # Examples
///
/// ```
/// use dyndex_persist::{SyncPolicy, WalOptions};
/// use std::time::Duration;
///
/// // Default: appends are process-crash durable, fsync only at
/// // snapshots / explicit sync_wal().
/// assert_eq!(WalOptions::default().sync, SyncPolicy::OnSnapshot);
/// let group_commit = WalOptions { sync: SyncPolicy::EveryN(64) };
/// assert_eq!(group_commit.sync, SyncPolicy::EveryN(64));
/// // Group commit with a staleness bound: one fsync per 64 records, but
/// // never leave the first un-synced record waiting past 5ms.
/// let batched = WalOptions {
///     sync: SyncPolicy::Batched { every: 64, max_delay: Duration::from_millis(5) },
/// };
/// assert_ne!(batched.sync, group_commit.sync);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalOptions {
    /// fsync cadence for appended records.
    pub sync: SyncPolicy,
}

/// One logged batch. Every record *is* a batch — the shared suffix is
/// the point, not noise.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// Documents inserted (id, bytes).
    InsertBatch(Vec<(u64, Vec<u8>)>),
    /// Document ids deleted.
    DeleteBatch(Vec<u64>),
    /// One bulk-ingested chunk (id, bytes): the whole chunk is logged as
    /// a single coalesced frame — one length/crc header and one append
    /// `write_all` per chunk instead of per batch call — and replays
    /// through the bulk-build fast path rather than the `C0` buffer.
    IngestBatch(Vec<(u64, Vec<u8>)>),
}

fn encode_payload(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    write_u64(&mut payload, seq).expect("vec write");
    match record {
        WalRecord::InsertBatch(docs) => {
            write_u8(&mut payload, KIND_INSERT).expect("vec write");
            write_usize(&mut payload, docs.len()).expect("vec write");
            for (id, bytes) in docs {
                write_u64(&mut payload, *id).expect("vec write");
                write_bytes(&mut payload, bytes).expect("vec write");
            }
        }
        WalRecord::DeleteBatch(ids) => {
            write_u8(&mut payload, KIND_DELETE).expect("vec write");
            write_usize(&mut payload, ids.len()).expect("vec write");
            for id in ids {
                write_u64(&mut payload, *id).expect("vec write");
            }
        }
        WalRecord::IngestBatch(docs) => {
            write_u8(&mut payload, KIND_INGEST).expect("vec write");
            write_usize(&mut payload, docs.len()).expect("vec write");
            for (id, bytes) in docs {
                write_u64(&mut payload, *id).expect("vec write");
                write_bytes(&mut payload, bytes).expect("vec write");
            }
        }
    }
    payload
}

fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), PersistError> {
    let mut r = std::io::Cursor::new(payload);
    let seq = read_u64(&mut r)?;
    let record = match read_u8(&mut r)? {
        KIND_INSERT => {
            let count = read_usize(&mut r)?;
            let mut docs = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let id = read_u64(&mut r)?;
                let bytes = read_bytes(&mut r)?;
                docs.push((id, bytes));
            }
            WalRecord::InsertBatch(docs)
        }
        KIND_DELETE => {
            let count = read_usize(&mut r)?;
            let mut ids = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                ids.push(read_u64(&mut r)?);
            }
            WalRecord::DeleteBatch(ids)
        }
        KIND_INGEST => {
            let count = read_usize(&mut r)?;
            let mut docs = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let id = read_u64(&mut r)?;
                let bytes = read_bytes(&mut r)?;
                docs.push((id, bytes));
            }
            WalRecord::IngestBatch(docs)
        }
        k => return Err(PersistError::corrupt(format!("wal: bad record kind {k}"))),
    };
    if r.position() != payload.len() as u64 {
        return Err(PersistError::corrupt("wal: trailing bytes in record"));
    }
    Ok((seq, record))
}

/// Reads every valid record from `path` in file order, stopping silently
/// at the first invalid one (torn-tail semantics). A missing file is an
/// empty log.
pub(crate) fn read_wal_records(path: &Path) -> Result<Vec<(u64, WalRecord)>, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + 8;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // torn or corrupt tail: stop replay here
        }
        match decode_payload(payload) {
            Ok(rec) => out.push(rec),
            Err(_) => break,
        }
        pos = end;
    }
    Ok(out)
}

/// Latency handles the log records through when its owning store has
/// telemetry enabled (`None` otherwise — zero clock reads).
#[derive(Clone)]
pub(crate) struct WalMetrics {
    /// Full append latency: encode + frame + `write_all` (+ the fsync
    /// when the [`SyncPolicy`] makes this append pay one).
    pub append: Arc<Histogram>,
    /// `sync_data` latency, wherever it is paid (per record, group
    /// commit, snapshot truncation, explicit `sync_wal`, close).
    pub fsync: Arc<Histogram>,
    /// Failed appends (I/O errors; the store's health watchdog looks
    /// this series up by name). An append that fails inside its
    /// policy-charged fsync counts in both error series — the append
    /// did fail, and so did an fsync.
    pub append_errors: Arc<Counter>,
    /// Failed `sync_data` calls, wherever the fsync was paid.
    pub fsync_errors: Arc<Counter>,
    /// The store's flight recorder, for WAL append/fsync spans
    /// (`None` keeps spans off without a second policy knob).
    pub flight: Option<Arc<FlightRecorder>>,
}

impl WalMetrics {
    /// Get-or-creates the WAL series in `registry`, striped per shard;
    /// `flight`, when present, receives one span per append and fsync.
    pub(crate) fn register(
        registry: &MetricsRegistry,
        shards: usize,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        WalMetrics {
            append: registry.histogram(
                "dyndex_wal_append_duration",
                "write-ahead-log record append latency (fsync included when the policy charges it)",
                Unit::Nanos,
                shards,
            ),
            fsync: registry.histogram(
                "dyndex_wal_fsync_duration",
                "write-ahead-log fsync latency",
                Unit::Nanos,
                shards,
            ),
            append_errors: registry.counter(
                "dyndex_wal_append_errors",
                "write-ahead-log appends that failed with an I/O error",
                Unit::Count,
            ),
            fsync_errors: registry.counter(
                "dyndex_wal_fsync_errors",
                "write-ahead-log fsyncs that failed with an I/O error",
                Unit::Count,
            ),
            flight,
        }
    }
}

/// Append handle for one shard's log, carrying the fsync policy and the
/// group-commit accumulator.
pub(crate) struct WalWriter {
    file: std::fs::File,
    options: WalOptions,
    /// Records appended since the last fsync (group commit).
    unsynced: u32,
    /// When the oldest un-synced record was appended — the staleness
    /// clock [`SyncPolicy::Batched`]'s `max_delay` is checked against.
    first_unsynced: Option<Instant>,
    /// Latency recording, when the owning store has telemetry enabled.
    metrics: Option<WalMetrics>,
    /// Histogram stripe hint — the shard index, so each shard's log
    /// records contention-free.
    shard: usize,
}

impl WalWriter {
    /// Opens (creating if absent) the log for appending.
    pub(crate) fn open_append(path: PathBuf, options: WalOptions) -> Result<Self, PersistError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(WalWriter {
            file,
            options,
            unsynced: 0,
            first_unsynced: None,
            metrics: None,
            shard: 0,
        })
    }

    /// Points this writer at latency histograms (shard = stripe hint).
    pub(crate) fn set_metrics(&mut self, metrics: Option<WalMetrics>, shard: usize) {
        self.metrics = metrics;
        self.shard = shard;
    }

    /// Stamps the flight clock, when a recorder is attached.
    fn flight_now(&self) -> Option<u64> {
        self.metrics
            .as_ref()
            .and_then(|m| m.flight.as_ref())
            .map(|f| f.now_nanos())
    }

    /// Records one finished WAL operation as a root flight span (slow
    /// ones are retained by the recorder's slow-op log).
    fn record_span(&self, kind: SpanKind, start: Option<u64>, duration_nanos: u64, detail: u64) {
        let Some(flight) = self.metrics.as_ref().and_then(|m| m.flight.as_ref()) else {
            return;
        };
        let Some(start_nanos) = start else { return };
        flight.finish_root(Span {
            shard: Some(self.shard),
            start_nanos,
            duration_nanos,
            detail,
            ..Span::root(flight.next_span_id(), kind)
        });
    }

    /// Appends one record. The bytes reach the OS before this returns
    /// (single `write_all`), so the log survives process crashes; the
    /// [`SyncPolicy`] decides whether this append also pays an fsync
    /// (per record, per group of N, or never — see [`WalWriter::sync`]).
    pub(crate) fn append(&mut self, seq: u64, record: &WalRecord) -> Result<(), PersistError> {
        let started = self.metrics.is_some().then(Instant::now);
        let flight_start = self.flight_now();
        let result = self.append_inner(seq, record);
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            match &result {
                Ok(bytes) => {
                    let nanos = started.elapsed().as_nanos() as u64;
                    m.append.record_at(self.shard, nanos);
                    self.record_span(SpanKind::WalAppend, flight_start, nanos, *bytes);
                }
                Err(_) => m.append_errors.inc(),
            }
        }
        result.map(|_| ())
    }

    /// The fallible body of [`WalWriter::append`], split out so the
    /// wrapper can count errors and record latency/spans on exactly one
    /// path each. Returns the framed bytes written (the span's payload).
    fn append_inner(&mut self, seq: u64, record: &WalRecord) -> Result<u64, PersistError> {
        let payload = encode_payload(seq, record);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.unsynced = self.unsynced.saturating_add(1);
        self.first_unsynced.get_or_insert_with(Instant::now);
        let due = match self.options.sync {
            SyncPolicy::PerRecord => true,
            // Group commit: the Nth un-synced record pays one fsync for
            // the whole batch (0 and 1 degenerate to per-record).
            SyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            SyncPolicy::OnSnapshot => false,
            // Group commit with a staleness bound: count *or* deadline.
            SyncPolicy::Batched { every, max_delay } => {
                self.unsynced >= every.max(1)
                    || self
                        .first_unsynced
                        .is_some_and(|first| first.elapsed() >= max_delay)
            }
        };
        if due {
            self.sync()?;
        }
        Ok(framed.len() as u64)
    }

    /// fsyncs the log file and resets the group-commit accumulator.
    pub(crate) fn sync(&mut self) -> Result<(), PersistError> {
        let started = self.metrics.is_some().then(Instant::now);
        let flight_start = self.flight_now();
        let result = self.file.sync_data();
        if result.is_ok() {
            self.unsynced = 0;
            self.first_unsynced = None;
        }
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            match &result {
                Ok(()) => {
                    let nanos = started.elapsed().as_nanos() as u64;
                    m.fsync.record_at(self.shard, nanos);
                    self.record_span(SpanKind::WalFsync, flight_start, nanos, 0);
                }
                Err(_) => m.fsync_errors.inc(),
            }
        }
        result.map_err(Into::into)
    }

    /// Empties the log (records are covered by a freshly committed
    /// snapshot) and keeps appending to the same file.
    pub(crate) fn truncate(&mut self) -> Result<(), PersistError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        // Through sync() so the truncation's fsync lands in the
        // latency histogram like every other one.
        self.sync()
    }

    /// Flushes the buffered tail to stable storage before the writer
    /// goes away: under [`SyncPolicy::EveryN`] / [`SyncPolicy::OnSnapshot`]
    /// up to a group (or everything since the last snapshot) may sit
    /// un-fsynced in the page cache, and a clean shutdown must not leave
    /// acknowledged records exposed to the next power failure. Errors
    /// propagate so callers can surface a failed final sync.
    pub(crate) fn close(&mut self) -> Result<(), PersistError> {
        if self.unsynced > 0 {
            self.sync()?;
        }
        Ok(())
    }
}

impl Drop for WalWriter {
    /// Best-effort tail sync for writers dropped without an explicit
    /// [`WalWriter::close`] (errors cannot propagate from a destructor).
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// The log file for shard `s` under `dir`.
pub(crate) fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join("wal").join(format!("shard-{shard:04}.wal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(name: &str) -> Self {
            let p =
                std::env::temp_dir().join(format!("dyndex-wal-test-{name}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let path = wal_path(&dir.0, 0);
        let mut w = WalWriter::open_append(path.clone(), WalOptions::default()).unwrap();
        let r1 = WalRecord::InsertBatch(vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        let r2 = WalRecord::DeleteBatch(vec![1]);
        w.append(1, &r1).unwrap();
        w.append(2, &r2).unwrap();
        w.sync().unwrap();
        assert!(path.exists());
        let got = read_wal_records(&path).unwrap();
        assert_eq!(got, vec![(1, r1.clone()), (2, r2.clone())]);
        // Reopen appends after existing records.
        drop(w);
        let mut w = WalWriter::open_append(path.clone(), WalOptions::default()).unwrap();
        w.append(3, &r1).unwrap();
        assert_eq!(read_wal_records(&path).unwrap().len(), 3);
        w.truncate().unwrap();
        assert!(read_wal_records(&path).unwrap().is_empty());
        w.append(4, &r2).unwrap();
        assert_eq!(read_wal_records(&path).unwrap(), vec![(4, r2)]);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = TempDir::new("torn");
        let path = wal_path(&dir.0, 0);
        let mut w = WalWriter::open_append(path.clone(), WalOptions::default()).unwrap();
        w.append(1, &WalRecord::DeleteBatch(vec![9])).unwrap();
        w.append(2, &WalRecord::DeleteBatch(vec![10])).unwrap();
        drop(w);
        // Simulate a torn write: chop bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let got = read_wal_records(&path).unwrap();
        assert_eq!(got.len(), 1, "only the intact prefix replays");
        assert_eq!(got[0].0, 1);
        // Garbage appended after valid records also stops cleanly.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_wal_records(&path).unwrap().len(), 1);
    }

    #[test]
    fn missing_file_is_empty_log() {
        let dir = TempDir::new("missing");
        assert!(read_wal_records(&wal_path(&dir.0, 3)).unwrap().is_empty());
    }

    /// A writer wired to a fresh registry so tests can count fsyncs.
    fn metered_writer(dir: &Path, sync: SyncPolicy) -> (WalWriter, Arc<Histogram>) {
        let registry = MetricsRegistry::new();
        let metrics = WalMetrics::register(&registry, 1, None);
        let fsyncs = Arc::clone(&metrics.fsync);
        let mut w = WalWriter::open_append(wal_path(dir, 0), WalOptions { sync }).unwrap();
        w.set_metrics(Some(metrics), 0);
        (w, fsyncs)
    }

    #[test]
    fn batched_policy_syncs_on_count() {
        let dir = TempDir::new("batched-count");
        let (mut w, fsyncs) = metered_writer(
            &dir.0,
            SyncPolicy::Batched {
                every: 3,
                max_delay: Duration::from_secs(3600),
            },
        );
        for seq in 1..=2 {
            w.append(seq, &WalRecord::DeleteBatch(vec![seq])).unwrap();
        }
        assert_eq!(fsyncs.snapshot().count(), 0, "below the group size");
        w.append(3, &WalRecord::DeleteBatch(vec![3])).unwrap();
        assert_eq!(fsyncs.snapshot().count(), 1, "third record pays the fsync");
        // Close with nothing un-synced adds no extra fsync.
        w.close().unwrap();
        assert_eq!(fsyncs.snapshot().count(), 1);
    }

    #[test]
    fn batched_policy_syncs_on_deadline() {
        let dir = TempDir::new("batched-deadline");
        let (mut w, fsyncs) = metered_writer(
            &dir.0,
            SyncPolicy::Batched {
                every: 1000,
                max_delay: Duration::from_millis(5),
            },
        );
        w.append(1, &WalRecord::DeleteBatch(vec![1])).unwrap();
        assert_eq!(fsyncs.snapshot().count(), 0, "deadline not reached yet");
        std::thread::sleep(Duration::from_millis(10));
        w.append(2, &WalRecord::DeleteBatch(vec![2])).unwrap();
        assert_eq!(
            fsyncs.snapshot().count(),
            1,
            "the append past the deadline forces the group to disk"
        );
        // The staleness clock restarted: an immediate append waits again.
        w.append(3, &WalRecord::DeleteBatch(vec![3])).unwrap();
        assert_eq!(fsyncs.snapshot().count(), 1);
        // Close covers the tail.
        w.close().unwrap();
        assert_eq!(fsyncs.snapshot().count(), 2);
    }

    #[test]
    fn ingest_batch_roundtrip_and_torn_tail() {
        let dir = TempDir::new("ingest-frames");
        let path = wal_path(&dir.0, 0);
        let mut w = WalWriter::open_append(path.clone(), WalOptions::default()).unwrap();
        let chunk1 = WalRecord::IngestBatch(vec![(1, b"bulk one".to_vec()), (2, b"two".to_vec())]);
        let chunk2 = WalRecord::IngestBatch(vec![(3, b"bulk three".to_vec())]);
        w.append(1, &chunk1).unwrap();
        w.append(2, &chunk2).unwrap();
        w.sync().unwrap();
        assert_eq!(
            read_wal_records(&path).unwrap(),
            vec![(1, chunk1.clone()), (2, chunk2)]
        );
        drop(w);
        // Tear the second coalesced frame mid-payload: the intact first
        // chunk replays, the torn one truncates cleanly.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert_eq!(read_wal_records(&path).unwrap(), vec![(1, chunk1)]);
    }
}
