//! Store-level snapshots: per-level content files shared across
//! generations, one small per-shard "meta" file, and a manifest —
//! written temp-then-rename so a crash at any point leaves the previous
//! consistent snapshot readable.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/MANIFEST                               framed Manifest (written LAST)
//! <dir>/shard-g00000003-0000.bin               per-shard meta, generation 3
//! <dir>/shard-g00000003-0001.bin               (C0 docs + scheduling scalars)
//! <dir>/level-g00000002-0000-e000000000000002a.bin   level content files,
//! <dir>/level-g00000003-0001-e0000000000000031.bin   named by the generation
//! <dir>/wal/shard-0000.wal                     that *wrote* them + (shard, epoch)
//! ```
//!
//! ## Delta snapshots
//!
//! Every installed static structure carries a monotone per-shard **level
//! epoch** (bumped on rebuild install, merge, and delete-bitmap
//! mutation — see `dyndex_core::transform2`), so two structures with the
//! same `(shard, epoch)` are byte-identical. A snapshot therefore
//! serializes only levels whose epoch has no committed content file yet;
//! for the rest it copies the previous generation's manifest entry
//! verbatim — the file on disk is simply *kept*. A store where only a
//! minority of shards changed between snapshots re-writes only those
//! shards' changed levels, never the whole store.
//!
//! ## Crash atomicity
//!
//! New content files never overwrite files the committed manifest points
//! to (fresh files carry the new generation in their name; reused
//! entries keep their original names). The manifest is replaced last via
//! write-to-temp-then-rename, followed by a **mandatory** parent-
//! directory fsync — the commit point that also makes every earlier
//! rename in the same directory durable against power loss. Only after
//! the commit are unreferenced files garbage-collected. A kill between
//! any two steps restores from the last committed manifest with all of
//! its (possibly shared) content files intact.
//!
//! ## Snapshot modes
//!
//! [`SnapshotMode::Background`] (the default) quiesces and freezes one
//! shard at a time — each shard's write lock is held only for an
//! O(levels) `Arc` clone — then serializes the frozen structures on the
//! store's resident worker pool, interleaved with query service: the
//! store never stalls globally for a snapshot.
//! [`SnapshotMode::StopTheWorld`] holds every shard's write lock from
//! quiesce to manifest commit (one globally consistent cut, full query
//! stall) — kept for comparison and for callers that need a cross-shard
//! point in time without an external write barrier.

use crate::codec::{
    crc32, decode_framed, encode_framed, read_frame, read_str, read_u16, read_u32, read_u64,
    read_u8, read_usize, sync_dir, write_file_atomic, write_frame, write_str, write_u16, write_u32,
    write_u64, write_u8, write_usize, Persist,
};
use crate::core_impls::{read_shard_meta, write_shard_meta};
use crate::error::PersistError;
use crate::wal::{read_wal_records, wal_path, WalOptions, WalRecord};
use dyndex_core::transform2::{FrozenLevel, FrozenSlot, FrozenSnapshot};
use dyndex_core::{DeletionOnlyIndex, DynOptions, RebuildMode, StaticIndex, Transform2Index};
use dyndex_obs::{Span, SpanKind};
use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, Telemetry};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The manifest's file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Routing algorithm id for SplitMix64 hash routing (the only one).
pub const ROUTE_SPLITMIX64: u16 = 1;
/// `wal_seq` sentinel: this snapshot was written without a write-ahead
/// log, so restore must not replay one.
pub const NO_WAL: u64 = u64::MAX;

/// Manifest frame tag. Distinct from the pre-delta manifest tag
/// (`0x00AA`), so a directory written by the old whole-shard format
/// fails restore with a typed `WrongType` error instead of mis-decoding.
const TAG_MANIFEST: u16 = 0x00AC;
/// Per-shard meta file tag (C0 documents + scheduling scalars).
const TAG_SHARD_META: u16 = 0x00AD;
/// Per-level content file tag (one serialized static structure).
const TAG_LEVEL: u16 = 0x00AE;

/// How a snapshot acquires its point-in-time view of the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Quiesce and freeze one shard at a time (each write lock held only
    /// for an O(levels) `Arc` clone), then serialize off-lock on the
    /// resident worker pool, interleaved with query service. Queries
    /// never see more than one shard's write lock held at a time, and
    /// never wait on serialization. The cut is per-shard: shard `i` is
    /// captured at the instant it is frozen (`DurableStore` holds its
    /// WAL locks across the snapshot, which restores a cross-shard
    /// consistent cut there).
    #[default]
    Background,
    /// Hold every shard's write lock across freezing, serialization,
    /// *and* the file writes up to the manifest commit: one globally
    /// consistent cut, full query stall for the whole snapshot — the
    /// behavior Background mode exists to avoid, kept for comparison
    /// (`fig5_persist` measures the reader-stall difference).
    StopTheWorld,
}

/// One file as recorded by the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFileEntry {
    /// File name relative to the snapshot directory.
    pub file: String,
    /// Exact byte length.
    pub bytes: u64,
    /// CRC-32 of the whole file.
    pub crc32: u32,
}

/// One static structure's content file: its slot in the Transformation-2
/// layout, the level epoch it serializes, and the file entry. Entries
/// whose epoch is unchanged are carried verbatim into the next
/// generation's manifest instead of being re-serialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelFileEntry {
    /// Where the structure sits (level `C_i`, top slot, or `L'_r`).
    pub slot: FrozenSlot,
    /// The level epoch the file's content was stamped with.
    pub epoch: u64,
    /// The content file.
    pub entry: ShardFileEntry,
}

/// One shard's file set: the per-generation meta file plus one content
/// file per populated static structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// C0 documents + scheduling scalars (rewritten every generation).
    pub meta: ShardFileEntry,
    /// Content files, possibly shared with earlier generations.
    pub levels: Vec<LevelFileEntry>,
}

/// The snapshot manifest: everything needed to validate and reassemble
/// a store, written last for crash atomicity.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Monotone snapshot generation (names the freshly written files).
    pub generation: u64,
    /// Unique id of this *commit*, minted fresh for every snapshot. A
    /// store records the commit id of the last snapshot its state
    /// descends from (written or restored); the next snapshot reuses
    /// level files only when the directory's committed id matches that
    /// lineage. This is fork detection: a different store — or a
    /// *diverged restore* of the same snapshot — fails the match and
    /// falls back to a full write, because epochs from divergent
    /// histories can collide on different bytes.
    pub commit_uid: u64,
    /// Shard count (restore rebuilds exactly this many).
    pub num_shards: usize,
    /// Document-routing algorithm ([`ROUTE_SPLITMIX64`]).
    pub route_algo: u16,
    /// [`Persist::TAG`] of the static index type, so a store can only be
    /// restored as the type it was snapshotted as.
    pub index_tag: u16,
    /// The serialized `I::Config` (opaque here; decoded by the caller
    /// that knows `I`).
    pub config_bytes: Vec<u8>,
    /// Dynamization options every shard was built with.
    pub options: DynOptions,
    /// WAL records with sequence number `<= wal_seq` are already
    /// reflected in the shard files; [`NO_WAL`] means no log exists.
    pub wal_seq: u64,
    /// Per-shard file sets, in shard order.
    pub shards: Vec<ShardManifest>,
}

const SLOT_LEVEL: u8 = 0;
const SLOT_TOP: u8 = 1;
const SLOT_LR_PRIME: u8 = 2;

fn write_slot<W: Write>(w: &mut W, slot: FrozenSlot) -> std::io::Result<()> {
    match slot {
        FrozenSlot::Level(i) => {
            write_u8(w, SLOT_LEVEL)?;
            write_usize(w, i)
        }
        FrozenSlot::Top(t) => {
            write_u8(w, SLOT_TOP)?;
            write_usize(w, t)
        }
        FrozenSlot::LrPrime => {
            write_u8(w, SLOT_LR_PRIME)?;
            write_usize(w, 0)
        }
    }
}

fn read_slot<R: Read>(r: &mut R) -> Result<FrozenSlot, PersistError> {
    let kind = read_u8(r)?;
    let index = read_usize(r)?;
    match kind {
        SLOT_LEVEL => Ok(FrozenSlot::Level(index)),
        SLOT_TOP => Ok(FrozenSlot::Top(index)),
        SLOT_LR_PRIME => Ok(FrozenSlot::LrPrime),
        k => Err(PersistError::corrupt(format!(
            "manifest: bad level slot kind {k}"
        ))),
    }
}

fn write_file_entry<W: Write>(w: &mut W, entry: &ShardFileEntry) -> std::io::Result<()> {
    write_str(w, &entry.file)?;
    write_u64(w, entry.bytes)?;
    write_u32(w, entry.crc32)
}

fn read_file_entry<R: Read>(r: &mut R) -> Result<ShardFileEntry, PersistError> {
    let file = read_str(r)?;
    let bytes = read_u64(r)?;
    let crc = read_u32(r)?;
    Ok(ShardFileEntry {
        file,
        bytes,
        crc32: crc,
    })
}

impl Persist for Manifest {
    const TAG: u16 = TAG_MANIFEST;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_u64(w, self.generation)?;
        write_u64(w, self.commit_uid)?;
        write_usize(w, self.num_shards)?;
        write_u16(w, self.route_algo)?;
        write_u16(w, self.index_tag)?;
        write_usize(w, self.config_bytes.len())?;
        w.write_all(&self.config_bytes)?;
        self.options.write_to(w)?;
        write_u64(w, self.wal_seq)?;
        write_usize(w, self.shards.len())?;
        for shard in &self.shards {
            write_file_entry(w, &shard.meta)?;
            write_usize(w, shard.levels.len())?;
            for level in &shard.levels {
                write_slot(w, level.slot)?;
                write_u64(w, level.epoch)?;
                write_file_entry(w, &level.entry)?;
            }
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let generation = read_u64(r)?;
        let commit_uid = read_u64(r)?;
        let num_shards = read_usize(r)?;
        let route_algo = read_u16(r)?;
        let index_tag = read_u16(r)?;
        let config_len = read_usize(r)?;
        let mut config_bytes = vec![0u8; config_len.min(1 << 20)];
        if config_len > config_bytes.len() {
            return Err(PersistError::corrupt("manifest: config blob too large"));
        }
        r.read_exact(&mut config_bytes)?;
        let options = DynOptions::read_from(r)?;
        let wal_seq = read_u64(r)?;
        let n = read_usize(r)?;
        let mut shards = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let meta = read_file_entry(r)?;
            let n_levels = read_usize(r)?;
            let mut levels = Vec::with_capacity(n_levels.min(1 << 12));
            for _ in 0..n_levels {
                let slot = read_slot(r)?;
                let epoch = read_u64(r)?;
                let entry = read_file_entry(r)?;
                levels.push(LevelFileEntry { slot, epoch, entry });
            }
            shards.push(ShardManifest { meta, levels });
        }
        Ok(Manifest {
            generation,
            commit_uid,
            num_shards,
            route_algo,
            index_tag,
            config_bytes,
            options,
            wal_seq,
            shards,
        })
    }
}

impl Manifest {
    /// Every file name this manifest references (meta + level files).
    fn referenced_files(&self) -> HashSet<&str> {
        self.shards
            .iter()
            .flat_map(|s| {
                std::iter::once(s.meta.file.as_str())
                    .chain(s.levels.iter().map(|l| l.entry.file.as_str()))
            })
            .collect()
    }

    /// Total bytes of every referenced file (the snapshot's on-disk
    /// footprint, excluding the manifest itself).
    pub(crate) fn referenced_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.meta.bytes + s.levels.iter().map(|l| l.entry.bytes).sum::<u64>())
            .sum()
    }
}

/// What a completed snapshot wrote (and reused).
#[derive(Clone, Copy, Debug)]
pub struct SnapshotStats {
    /// Generation committed by this snapshot.
    pub generation: u64,
    /// Number of shards.
    pub shards: usize,
    /// Total on-disk footprint of the committed snapshot: every
    /// referenced file (fresh + reused) plus the manifest.
    pub bytes_on_disk: u64,
    /// Bytes actually written by this snapshot (fresh level files,
    /// per-shard meta files, and the manifest).
    pub bytes_written: u64,
    /// Bytes carried over from the previous generation without
    /// re-serialization (level files whose epoch was unchanged).
    pub bytes_reused: u64,
    /// Static structures serialized fresh this generation.
    pub levels_written: usize,
    /// Static structures whose committed file was reused.
    pub levels_reused: usize,
    /// WAL sequence the snapshot covers ([`NO_WAL`] if none).
    pub wal_seq: u64,
}

impl std::fmt::Display for SnapshotStats {
    /// One readable line, e.g.
    /// `snapshot gen 4 | 4 shards | 18.2 KiB written | 210.0 KiB reused
    /// | 92% delta savings (11/13 levels reused)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt_bytes = |b: u64| {
            if b < 1024 {
                format!("{b} B")
            } else if b < 1024 * 1024 {
                format!("{:.1} KiB", b as f64 / 1024.0)
            } else {
                format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
            }
        };
        let total = self.bytes_written + self.bytes_reused;
        let ratio = if total == 0 {
            0.0
        } else {
            100.0 * self.bytes_reused as f64 / total as f64
        };
        write!(
            f,
            "snapshot gen {} | {} shard{} | {} written | {} reused | {:.0}% delta savings ({}/{} levels reused)",
            self.generation,
            self.shards,
            if self.shards == 1 { "" } else { "s" },
            fmt_bytes(self.bytes_written),
            fmt_bytes(self.bytes_reused),
            ratio,
            self.levels_reused,
            self.levels_reused + self.levels_written,
        )
    }
}

/// How a restored store should run (everything *about the data* — shard
/// count, index config, dynamization options — comes from the manifest;
/// these are the runtime-only choices).
///
/// # Examples
///
/// ```
/// use dyndex_core::RebuildMode;
/// use dyndex_persist::{RestoreOptions, SyncPolicy};
/// use dyndex_store::{FanOutPolicy, MaintenancePolicy};
///
/// // The default restores into the production configuration: background
/// // rebuilds, a resident worker per shard, pooled query fan-out, and
/// // snapshot-paced WAL fsyncs.
/// let options = RestoreOptions::default();
/// assert_eq!(options.mode, RebuildMode::Background);
/// assert_eq!(options.fan_out, FanOutPolicy::Pooled);
/// assert!(matches!(options.maintenance, MaintenancePolicy::Periodic(_)));
/// assert_eq!(options.wal.sync, SyncPolicy::OnSnapshot);
/// ```
#[derive(Clone, Debug)]
pub struct RestoreOptions {
    /// Rebuild execution mode for the restored shards.
    pub mode: RebuildMode,
    /// Background maintenance driving policy (the per-shard worker pool
    /// is re-created under [`MaintenancePolicy::Periodic`]).
    pub maintenance: MaintenancePolicy,
    /// Query fan-out execution model for the restored store (see
    /// [`FanOutPolicy`]).
    pub fan_out: FanOutPolicy,
    /// Write-ahead-log fsync policy for the reopened logs
    /// (`DurableStore::open`; ignored by plain `restore`).
    pub wal: WalOptions,
    /// Telemetry policy for the restored store. Pass
    /// [`Telemetry::Shared`] with the predecessor's registry and the
    /// restored store keeps accumulating into the same metric series
    /// (registration is get-or-create by name).
    pub telemetry: Telemetry,
}

impl Default for RestoreOptions {
    fn default() -> Self {
        RestoreOptions {
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_millis(1)),
            fan_out: FanOutPolicy::Pooled,
            wal: WalOptions::default(),
            telemetry: Telemetry::default(),
        }
    }
}

fn shard_meta_file_name(generation: u64, shard: usize) -> String {
    format!("shard-g{generation:08}-{shard:04}.bin")
}

fn level_file_name(generation: u64, shard: usize, epoch: u64) -> String {
    format!("level-g{generation:08}-{shard:04}-e{epoch:016x}.bin")
}

/// Reads and validates the manifest of a snapshot directory.
pub fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
    let manifest: Manifest = decode_framed(&mut std::io::Cursor::new(bytes))?;
    if manifest.route_algo != ROUTE_SPLITMIX64 {
        return Err(PersistError::manifest(format!(
            "unknown routing algorithm {}",
            manifest.route_algo
        )));
    }
    if manifest.num_shards == 0 || manifest.num_shards != manifest.shards.len() {
        return Err(PersistError::manifest(format!(
            "shard count {} inconsistent with {} file entries",
            manifest.num_shards,
            manifest.shards.len()
        )));
    }
    Ok(manifest)
}

/// Best-effort garbage collection after a commit: removes snapshot files
/// (meta and level) the committed manifest does not reference, plus
/// stale atomic-write temp files.
fn cleanup_stale(dir: &Path, manifest: &Manifest) {
    let referenced = manifest.referenced_files();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let snapshot_file = name.starts_with("shard-g") || name.starts_with("level-g");
        let stale_snapshot = snapshot_file && !referenced.contains(name);
        let stale_tmp = name.starts_with('.') && name.contains(".tmp.");
        if stale_snapshot || stale_tmp {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// What one shard's snapshot pass produced: the framed meta payload plus
/// one outcome per populated static structure.
struct ShardEncoded {
    meta: Vec<u8>,
    levels: Vec<LevelOutcome>,
}

enum LevelOutcome {
    /// The previous generation already holds this `(shard, epoch)`'s
    /// bytes; carry its manifest entry forward.
    Reused(LevelFileEntry),
    /// A changed level: `framed` starts empty at planning time and is
    /// filled once the level's encoding job completes.
    Fresh {
        slot: FrozenSlot,
        epoch: u64,
        framed: Vec<u8>,
    },
}

impl LevelOutcome {
    fn set_framed(&mut self, bytes: Vec<u8>) {
        match self {
            LevelOutcome::Fresh { framed, .. } => *framed = bytes,
            LevelOutcome::Reused(_) => unreachable!("only fresh levels are encoded"),
        }
    }
}

/// Frames one static structure as a level content file.
fn encode_level<I: StaticIndex + Persist>(
    index: &DeletionOnlyIndex<I>,
) -> std::io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    index.write_to(&mut payload)?;
    let mut framed = Vec::with_capacity(payload.len() + 24);
    write_frame(&mut framed, TAG_LEVEL, &payload)?;
    Ok(framed)
}

/// Frames one shard's meta payload (C0 + scalars).
fn encode_meta<I: StaticIndex>(frozen: &FrozenSnapshot<I>) -> std::io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    write_shard_meta(&mut payload, frozen)?;
    let mut framed = Vec::with_capacity(payload.len() + 24);
    write_frame(&mut framed, TAG_SHARD_META, &payload)?;
    Ok(framed)
}

/// Splits a frozen shard into per-level outcomes: reused entries carry
/// the previous generation's file entry verbatim; changed levels become
/// empty [`LevelOutcome::Fresh`] placeholders plus an encode work item
/// `(outcome index, structure handle)` for the caller to run (inline or
/// on the worker pool).
#[allow(clippy::type_complexity)]
fn plan_shard<I: StaticIndex + Persist>(
    shard: usize,
    frozen: &FrozenSnapshot<I>,
    reuse: &HashMap<(usize, u64), LevelFileEntry>,
) -> (Vec<LevelOutcome>, Vec<(usize, Arc<DeletionOnlyIndex<I>>)>) {
    let mut outcomes: Vec<LevelOutcome> = Vec::with_capacity(frozen.levels.len());
    let mut todo = Vec::new();
    for (idx, level) in frozen.levels.iter().enumerate() {
        match reuse.get(&(shard, level.epoch)) {
            Some(entry) => outcomes.push(LevelOutcome::Reused(LevelFileEntry {
                // The slot can migrate between generations (a structure
                // moving level → top keeps its bytes); record where it
                // sits *now*, reusing only the content file.
                slot: level.slot,
                epoch: level.epoch,
                entry: entry.entry.clone(),
            })),
            None => {
                outcomes.push(LevelOutcome::Fresh {
                    slot: level.slot,
                    epoch: level.epoch,
                    framed: Vec::new(),
                });
                todo.push((idx, Arc::clone(&level.index)));
            }
        }
    }
    (outcomes, todo)
}

/// Clears the store's snapshot-in-progress gauge on scope exit (error
/// paths included).
struct SnapshotFlag<'a, I: StaticIndex + Sync>(&'a ShardedStore<I>);

impl<'a, I: StaticIndex + Sync> SnapshotFlag<'a, I> {
    fn set(store: &'a ShardedStore<I>) -> Self {
        store.set_snapshot_in_progress(true);
        SnapshotFlag(store)
    }
}

impl<I: StaticIndex + Sync> Drop for SnapshotFlag<'_, I> {
    fn drop(&mut self) {
        self.0.set_snapshot_in_progress(false);
    }
}

/// Serializes `store` into `dir` and commits a new manifest generation,
/// re-serializing only levels whose epoch has no committed content file
/// (see the module docs). `wal_seq` is the highest WAL sequence the
/// shard state reflects ([`NO_WAL`] for WAL-less stores).
pub(crate) fn write_snapshot<I>(
    store: &ShardedStore<I>,
    dir: &Path,
    wal_seq: u64,
    mode: SnapshotMode,
) -> Result<SnapshotStats, PersistError>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    std::fs::create_dir_all(dir)?;
    // Flight-recorder spans: one `snapshot` root for the whole
    // generation, with per-shard `freeze` / `serialize` children.
    let flight = store.flight_recorder();
    let snap_start = flight
        .as_ref()
        .map(|f| (f.next_span_id(), f.now_nanos(), Instant::now()));
    let snap_root = snap_start.map_or(0, |(id, _, _)| id);
    let child_span = |shard: usize, kind: SpanKind, start: Option<(u64, Instant)>, detail: u64| {
        if let (Some(f), Some((start_nanos, started))) = (&flight, start) {
            f.record_at(
                shard,
                Span {
                    shard: Some(shard),
                    start_nanos,
                    duration_nanos: started.elapsed().as_nanos() as u64,
                    detail,
                    ..Span::child(snap_root, kind)
                },
            );
        }
    };
    let stamp = || flight.as_ref().map(|f| (f.now_nanos(), Instant::now()));
    // Pick the next generation so new files never collide with the ones
    // the committed manifest points to. A *missing* manifest means a
    // fresh directory, and a corrupt one means the previous snapshot is
    // already unrecoverable — both safely restart at generation 1 with a
    // full write. Any other I/O failure must propagate: falling back
    // would reuse a committed generation's file names and destroy crash
    // atomicity.
    let previous = match read_manifest(dir) {
        Ok(m) => Some(m),
        Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e @ PersistError::Io(_)) => return Err(e),
        Err(_) => None,
    };
    let generation = previous.as_ref().map_or(1, |m| m.generation + 1);
    // Reuse is valid only when the committed snapshot is the exact one
    // this store's state descends from (fork detection: epochs from
    // divergent histories can collide on different bytes), and only for
    // files still present on disk.
    let mut reuse: HashMap<(usize, u64), LevelFileEntry> = HashMap::new();
    if let Some(prev) = &previous {
        if prev.commit_uid == store.snapshot_lineage() {
            for (shard, sm) in prev.shards.iter().enumerate() {
                for level in &sm.levels {
                    if dir.join(&level.entry.file).is_file() {
                        reuse.insert((shard, level.epoch), level.clone());
                    }
                }
            }
        }
    }

    let config;
    let options;
    let mut encoded: Vec<ShardEncoded> = Vec::with_capacity(store.num_shards());
    // StopTheWorld keeps these guards alive until after the manifest
    // commit: the whole snapshot — quiesce, serialization, file writes —
    // is one global stall, the behavior Background mode exists to avoid.
    let mut stw_guards = None;
    match mode {
        SnapshotMode::StopTheWorld => {
            let mut guards = store.lock_all_shards();
            for guard in guards.iter_mut() {
                guard.finish_background_work();
            }
            config = guards[0].persist_config().clone();
            options = *guards[0].persist_options();
            for (shard, guard) in guards.iter().enumerate() {
                let freeze_start = stamp();
                let frozen = guard
                    .freeze()
                    .expect("finish_background_work leaves the shard quiesced");
                child_span(shard, SpanKind::ShardFreeze, freeze_start, 0);
                let (mut outcomes, todo) = plan_shard(shard, &frozen, &reuse);
                let serialize_start = stamp();
                let mut level_bytes = 0u64;
                for (idx, index) in todo {
                    let framed = encode_level(&*index)?;
                    level_bytes += framed.len() as u64;
                    outcomes[idx].set_framed(framed);
                }
                child_span(
                    shard,
                    SpanKind::ShardSerialize,
                    serialize_start,
                    level_bytes,
                );
                encoded.push(ShardEncoded {
                    meta: encode_meta(&frozen)?,
                    levels: outcomes,
                });
            }
            stw_guards = Some(guards);
        }
        SnapshotMode::Background => {
            {
                let guard = store.lock_shard(0);
                config = guard.persist_config().clone();
                options = *guard.persist_options();
            }
            // Freeze one shard at a time: each write lock is held only
            // for the quiesce + O(levels) Arc clones; every other shard
            // keeps serving throughout. No two shard locks are ever held
            // simultaneously on this path.
            let frozen: Vec<FrozenSnapshot<I>> = (0..store.num_shards())
                .map(|s| {
                    let freeze_start = stamp();
                    let fz = store.freeze_shard(s);
                    child_span(s, SpanKind::ShardFreeze, freeze_start, 0);
                    fz
                })
                .collect();
            let _flag = SnapshotFlag::set(store);
            // Serialize changed levels on the resident worker pool, one
            // job per level so encoding interleaves with query service;
            // poolless stores encode inline (still off-lock).
            let (tx, rx) = mpsc::channel::<(usize, usize, std::io::Result<Vec<u8>>)>();
            let mut pending = 0usize;
            let mut plans: Vec<Vec<LevelOutcome>> = Vec::with_capacity(frozen.len());
            for (shard, fz) in frozen.iter().enumerate() {
                let (outcomes, todo) = plan_shard(shard, fz, &reuse);
                for (idx, index) in todo {
                    pending += 1;
                    let job_tx = tx.clone();
                    let job_index = Arc::clone(&index);
                    let job_flight = flight.clone();
                    let job = Box::new(move || {
                        let start = job_flight.as_ref().map(|f| (f.now_nanos(), Instant::now()));
                        let result = encode_level(&*job_index);
                        if let (Some(f), Some((start_nanos, started))) = (&job_flight, start) {
                            f.record_at(
                                shard,
                                Span {
                                    shard: Some(shard),
                                    start_nanos,
                                    duration_nanos: started.elapsed().as_nanos() as u64,
                                    detail: result.as_ref().map_or(0, |b| b.len() as u64),
                                    ..Span::child(snap_root, SpanKind::ShardSerialize)
                                },
                            );
                        }
                        let _ = job_tx.send((shard, idx, result));
                    });
                    if !store.submit_background_job(shard, job) {
                        let start = stamp();
                        let result = encode_level(&*index);
                        child_span(
                            shard,
                            SpanKind::ShardSerialize,
                            start,
                            result.as_ref().map_or(0, |b| b.len() as u64),
                        );
                        let _ = tx.send((shard, idx, result));
                    }
                }
                plans.push(outcomes);
            }
            drop(tx);
            for _ in 0..pending {
                let (shard, idx, result) = rx.recv().map_err(|_| {
                    PersistError::corrupt("snapshot serialization worker disappeared")
                })?;
                plans[shard][idx].set_framed(result?);
            }
            for (fz, outcomes) in frozen.iter().zip(plans) {
                encoded.push(ShardEncoded {
                    meta: encode_meta(fz)?,
                    levels: outcomes,
                });
            }
        }
    }

    // Write fresh files, assemble the manifest, commit, collect garbage.
    let mut shards = Vec::with_capacity(encoded.len());
    let mut bytes_written = 0u64;
    let mut bytes_reused = 0u64;
    let mut levels_written = 0usize;
    let mut levels_reused = 0usize;
    for (shard, enc) in encoded.into_iter().enumerate() {
        let mut levels = Vec::with_capacity(enc.levels.len());
        for outcome in enc.levels {
            match outcome {
                LevelOutcome::Reused(entry) => {
                    bytes_reused += entry.entry.bytes;
                    levels_reused += 1;
                    levels.push(entry);
                }
                LevelOutcome::Fresh {
                    slot,
                    epoch,
                    framed,
                } => {
                    let file = level_file_name(generation, shard, epoch);
                    write_file_atomic(&dir.join(&file), &framed)?;
                    bytes_written += framed.len() as u64;
                    levels_written += 1;
                    levels.push(LevelFileEntry {
                        slot,
                        epoch,
                        entry: ShardFileEntry {
                            file,
                            bytes: framed.len() as u64,
                            crc32: crc32(&framed),
                        },
                    });
                }
            }
        }
        let meta_file = shard_meta_file_name(generation, shard);
        write_file_atomic(&dir.join(&meta_file), &enc.meta)?;
        bytes_written += enc.meta.len() as u64;
        shards.push(ShardManifest {
            meta: ShardFileEntry {
                file: meta_file,
                bytes: enc.meta.len() as u64,
                crc32: crc32(&enc.meta),
            },
            levels,
        });
    }
    let mut config_bytes = Vec::new();
    config.write_to(&mut config_bytes)?;
    let commit_uid = dyndex_store::fresh_uid();
    let manifest = Manifest {
        generation,
        commit_uid,
        num_shards: shards.len(),
        route_algo: ROUTE_SPLITMIX64,
        index_tag: I::TAG,
        config_bytes,
        options,
        wal_seq,
        shards,
    };
    let manifest_bytes = encode_framed(&manifest)?;
    // The commit point: everything before this is invisible to restore.
    write_file_atomic(&dir.join(MANIFEST_FILE), &manifest_bytes)?;
    // Mandatory directory fsync: makes the manifest rename — and every
    // earlier same-directory rename — durable against power loss. The
    // best-effort fsync inside write_file_atomic is not enough for the
    // commit point.
    sync_dir(dir)?;
    bytes_written += manifest_bytes.len() as u64;
    cleanup_stale(dir, &manifest);
    // The store's state now descends from this commit: its next
    // snapshot into the same directory may reuse unchanged files.
    store.set_snapshot_lineage(commit_uid);
    drop(stw_guards);
    if let (Some(f), Some((id, start_nanos, started))) = (&flight, snap_start) {
        f.finish_root(Span {
            start_nanos,
            duration_nanos: started.elapsed().as_nanos() as u64,
            detail: bytes_written,
            ..Span::root(id, SpanKind::Snapshot)
        });
    }
    Ok(SnapshotStats {
        generation,
        shards: manifest.num_shards,
        bytes_on_disk: manifest.referenced_bytes() + manifest_bytes.len() as u64,
        bytes_written,
        bytes_reused,
        levels_written,
        levels_reused,
        wal_seq,
    })
}

/// Rebuilds a store from the snapshot files the manifest points to
/// (no WAL replay — [`replay_wal`] layers that on top).
pub(crate) fn restore_snapshot<I>(
    dir: &Path,
    manifest: &Manifest,
    options: &RestoreOptions,
) -> Result<ShardedStore<I>, PersistError>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    if manifest.index_tag != I::TAG {
        return Err(PersistError::WrongType {
            found: manifest.index_tag,
            expected: I::TAG,
        });
    }
    let mut cursor = std::io::Cursor::new(manifest.config_bytes.as_slice());
    let config = I::Config::read_from(&mut cursor)?;
    if cursor.position() != manifest.config_bytes.len() as u64 {
        return Err(PersistError::corrupt("manifest: trailing config bytes"));
    }
    let read_checked = |entry: &ShardFileEntry, tag: u16| -> Result<Vec<u8>, PersistError> {
        let bytes = std::fs::read(dir.join(&entry.file))?;
        if bytes.len() as u64 != entry.bytes || crc32(&bytes) != entry.crc32 {
            return Err(PersistError::corrupt(format!(
                "snapshot file {} does not match its manifest entry",
                entry.file
            )));
        }
        let mut reader = std::io::Cursor::new(bytes);
        let payload = read_frame(&mut reader, tag)?;
        Ok(payload)
    };
    let mut shards = Vec::with_capacity(manifest.num_shards);
    for sm in &manifest.shards {
        let meta_payload = read_checked(&sm.meta, TAG_SHARD_META)?;
        let mut meta_reader = std::io::Cursor::new(meta_payload.as_slice());
        let meta = read_shard_meta(&mut meta_reader)?;
        if meta_reader.position() != meta_payload.len() as u64 {
            return Err(PersistError::corrupt(format!(
                "snapshot file {}: trailing payload bytes",
                sm.meta.file
            )));
        }
        let mut levels = Vec::with_capacity(sm.levels.len());
        for level in &sm.levels {
            let payload = read_checked(&level.entry, TAG_LEVEL)?;
            let mut reader = std::io::Cursor::new(payload.as_slice());
            let index = DeletionOnlyIndex::<I>::read_from(&mut reader)?;
            if reader.position() != payload.len() as u64 {
                return Err(PersistError::corrupt(format!(
                    "snapshot file {}: trailing payload bytes",
                    level.entry.file
                )));
            }
            levels.push(FrozenLevel {
                slot: level.slot,
                epoch: level.epoch,
                index: Arc::new(index),
            });
        }
        let frozen = FrozenSnapshot {
            c0_docs: meta.c0_docs,
            num_levels: meta.num_levels,
            num_top_slots: meta.num_top_slots,
            levels,
            nf: meta.nf,
            n: meta.n,
            deleted_since_maintenance: meta.deleted_since_maintenance,
            epoch_counter: meta.epoch_counter,
        };
        let index = Transform2Index::thaw(config.clone(), manifest.options, options.mode, frozen)
            .map_err(PersistError::corrupt)?;
        shards.push(index);
    }
    let store = ShardedStore::from_shard_indexes(
        shards,
        options.maintenance,
        options.fan_out,
        &options.telemetry,
    );
    // The restored state descends from this commit: its next snapshot
    // into the same directory can reuse every unchanged level file —
    // unless someone else commits in between (fork detection).
    store.set_snapshot_lineage(manifest.commit_uid);
    Ok(store)
}

/// Replays every WAL record with sequence `> after_seq` through the
/// store's normal insert/delete path, returning the highest sequence
/// seen (or `after_seq` if the logs are empty).
pub(crate) fn replay_wal<I>(
    store: &ShardedStore<I>,
    dir: &Path,
    after_seq: u64,
) -> Result<u64, PersistError>
where
    I: StaticIndex + Sync,
{
    let mut max_seq = after_seq;
    for shard in 0..store.num_shards() {
        for (seq, record) in read_wal_records(&wal_path(dir, shard))? {
            max_seq = max_seq.max(seq);
            if seq <= after_seq {
                continue;
            }
            match record {
                WalRecord::InsertBatch(docs) => {
                    for (id, bytes) in docs {
                        if store.contains(id) {
                            return Err(PersistError::corrupt(format!(
                                "wal replays document {id} already present in the snapshot"
                            )));
                        }
                        store.insert(id, &bytes)?;
                    }
                }
                WalRecord::DeleteBatch(ids) => {
                    for id in ids {
                        store.delete(id)?;
                    }
                }
                // A logged bulk chunk replays through the same fast path
                // that built it: straight to a static level on its shard,
                // never through the C0 buffer.
                WalRecord::IngestBatch(docs) => {
                    for (id, _) in &docs {
                        if store.contains(*id) {
                            return Err(PersistError::corrupt(format!(
                                "wal replays document {id} already present in the snapshot"
                            )));
                        }
                    }
                    store.bulk_load_shard(shard, &docs)?;
                }
            }
        }
    }
    Ok(max_seq)
}

/// Snapshot/restore as methods on [`ShardedStore`].
///
/// `snapshot` writes a point-in-time image re-serializing only changed
/// levels (delta snapshot), in [`SnapshotMode::Background`] by default —
/// per-shard freezing plus worker-pool serialization, so queries never
/// stall store-wide; `snapshot_with` picks the mode explicitly.
/// `restore` reads the latest committed manifest, rebuilds every shard,
/// re-creates the resident worker pool (per
/// [`RestoreOptions::maintenance`] and [`RestoreOptions::fan_out`]), and
/// — when the directory carries a write-ahead log (see `DurableStore`) —
/// replays the logged tail through the normal dynamic-buffer path,
/// recovering the exact pre-crash logical state.
///
/// # Examples
///
/// ```
/// use dyndex_core::FmConfig;
/// use dyndex_persist::{RestoreOptions, SnapshotMode, StorePersist};
/// use dyndex_store::{ShardedStore, StoreOptions};
/// use dyndex_text::FmIndexCompressed;
///
/// let dir = std::env::temp_dir().join(format!("dyndex-sp-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let store: ShardedStore<FmIndexCompressed> =
///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
/// store.insert(1, b"snapshot me");
/// let first = store.snapshot(&dir).unwrap();
/// // A second snapshot with nothing changed reuses every level file.
/// let second = store.snapshot_with(&dir, SnapshotMode::StopTheWorld).unwrap();
/// assert_eq!(second.generation, first.generation + 1);
/// let restored: ShardedStore<FmIndexCompressed> =
///     ShardedStore::restore(&dir, RestoreOptions::default()).unwrap();
/// assert_eq!(restored.count(b"snapshot"), 1);
/// assert_eq!(restored.worker_threads(), restored.num_shards()); // pool re-created
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub trait StorePersist: Sized {
    /// Writes a snapshot of `self` into `dir` in the default
    /// [`SnapshotMode::Background`].
    fn snapshot(&self, dir: &Path) -> Result<SnapshotStats, PersistError> {
        self.snapshot_with(dir, SnapshotMode::default())
    }

    /// Writes a snapshot of `self` into `dir` in the given mode.
    fn snapshot_with(&self, dir: &Path, mode: SnapshotMode) -> Result<SnapshotStats, PersistError>;

    /// Rebuilds a store from the snapshot (plus WAL tail) in `dir`.
    fn restore(dir: &Path, options: RestoreOptions) -> Result<Self, PersistError>;
}

impl<I> StorePersist for ShardedStore<I>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    fn snapshot_with(&self, dir: &Path, mode: SnapshotMode) -> Result<SnapshotStats, PersistError> {
        write_snapshot(self, dir, NO_WAL, mode)
    }

    fn restore(dir: &Path, options: RestoreOptions) -> Result<Self, PersistError> {
        let manifest = read_manifest(dir)?;
        let store = restore_snapshot::<I>(dir, &manifest, &options)?;
        if manifest.wal_seq != NO_WAL {
            replay_wal(&store, dir, manifest.wal_seq)?;
        }
        Ok(store)
    }
}
