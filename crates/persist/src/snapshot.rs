//! Store-level snapshots: one framed file per shard plus a manifest,
//! written temp-then-rename so a crash at any point leaves the previous
//! consistent snapshot readable.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/MANIFEST                     framed Manifest (written LAST)
//! <dir>/shard-g00000003-0000.bin     framed shard payloads, generation 3
//! <dir>/shard-g00000003-0001.bin
//! <dir>/wal/shard-0000.wal           write-ahead logs (DurableStore only)
//! ```
//!
//! Shard files carry the snapshot *generation* in their name, so a new
//! snapshot never overwrites the files the current manifest points to:
//! all shard files of generation `g+1` land first, then the manifest is
//! atomically replaced, then generation-`g` files are garbage-collected.
//! A kill between any two steps restores from the last committed
//! manifest.

use crate::codec::{
    crc32, decode_framed, encode_framed, read_frame, read_str, read_u16, read_u32, read_u64,
    read_usize, write_file_atomic, write_frame, write_str, write_u16, write_u32, write_u64,
    write_usize, Persist,
};
use crate::core_impls::{read_frozen_parts, write_frozen_view};
use crate::error::PersistError;
use crate::wal::{read_wal_records, wal_path, WalRecord};
use dyndex_core::{DynOptions, RebuildMode, StaticIndex, Transform2Index};
use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore};
use std::io::{Read, Write};
use std::path::Path;
use std::time::Duration;

/// The manifest's file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Routing algorithm id for SplitMix64 hash routing (the only one).
pub const ROUTE_SPLITMIX64: u16 = 1;
/// `wal_seq` sentinel: this snapshot was written without a write-ahead
/// log, so restore must not replay one.
pub const NO_WAL: u64 = u64::MAX;

const TAG_MANIFEST: u16 = 0x00AA;
const TAG_SHARD: u16 = 0x00AB;

/// One shard file as recorded by the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFileEntry {
    /// File name relative to the snapshot directory.
    pub file: String,
    /// Exact byte length.
    pub bytes: u64,
    /// CRC-32 of the whole file.
    pub crc32: u32,
}

/// The snapshot manifest: everything needed to validate and reassemble
/// a store, written last for crash atomicity.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Monotone snapshot generation (names the shard files).
    pub generation: u64,
    /// Shard count (restore rebuilds exactly this many).
    pub num_shards: usize,
    /// Document-routing algorithm ([`ROUTE_SPLITMIX64`]).
    pub route_algo: u16,
    /// [`Persist::TAG`] of the static index type, so a store can only be
    /// restored as the type it was snapshotted as.
    pub index_tag: u16,
    /// The serialized `I::Config` (opaque here; decoded by the caller
    /// that knows `I`).
    pub config_bytes: Vec<u8>,
    /// Dynamization options every shard was built with.
    pub options: DynOptions,
    /// WAL records with sequence number `<= wal_seq` are already
    /// reflected in the shard files; [`NO_WAL`] means no log exists.
    pub wal_seq: u64,
    /// Per-shard file entries, in shard order.
    pub shards: Vec<ShardFileEntry>,
}

impl Persist for Manifest {
    const TAG: u16 = TAG_MANIFEST;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_u64(w, self.generation)?;
        write_usize(w, self.num_shards)?;
        write_u16(w, self.route_algo)?;
        write_u16(w, self.index_tag)?;
        write_usize(w, self.config_bytes.len())?;
        w.write_all(&self.config_bytes)?;
        self.options.write_to(w)?;
        write_u64(w, self.wal_seq)?;
        write_usize(w, self.shards.len())?;
        for entry in &self.shards {
            write_str(w, &entry.file)?;
            write_u64(w, entry.bytes)?;
            write_u32(w, entry.crc32)?;
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let generation = read_u64(r)?;
        let num_shards = read_usize(r)?;
        let route_algo = read_u16(r)?;
        let index_tag = read_u16(r)?;
        let config_len = read_usize(r)?;
        let mut config_bytes = vec![0u8; config_len.min(1 << 20)];
        if config_len > config_bytes.len() {
            return Err(PersistError::corrupt("manifest: config blob too large"));
        }
        r.read_exact(&mut config_bytes)?;
        let options = DynOptions::read_from(r)?;
        let wal_seq = read_u64(r)?;
        let n = read_usize(r)?;
        let mut shards = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let file = read_str(r)?;
            let bytes = read_u64(r)?;
            let crc = read_u32(r)?;
            shards.push(ShardFileEntry {
                file,
                bytes,
                crc32: crc,
            });
        }
        Ok(Manifest {
            generation,
            num_shards,
            route_algo,
            index_tag,
            config_bytes,
            options,
            wal_seq,
            shards,
        })
    }
}

/// What a completed snapshot wrote.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotStats {
    /// Generation committed by this snapshot.
    pub generation: u64,
    /// Number of shard files.
    pub shards: usize,
    /// Total bytes on disk (shard files + manifest).
    pub bytes_on_disk: u64,
    /// WAL sequence the snapshot covers ([`NO_WAL`] if none).
    pub wal_seq: u64,
}

/// How a restored store should run (everything *about the data* — shard
/// count, index config, dynamization options — comes from the manifest;
/// these are the runtime-only choices).
///
/// # Examples
///
/// ```
/// use dyndex_core::RebuildMode;
/// use dyndex_persist::RestoreOptions;
/// use dyndex_store::{FanOutPolicy, MaintenancePolicy};
///
/// // The default restores into the production configuration: background
/// // rebuilds, a resident worker per shard, pooled query fan-out.
/// let options = RestoreOptions::default();
/// assert_eq!(options.mode, RebuildMode::Background);
/// assert_eq!(options.fan_out, FanOutPolicy::Pooled);
/// assert!(matches!(options.maintenance, MaintenancePolicy::Periodic(_)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RestoreOptions {
    /// Rebuild execution mode for the restored shards.
    pub mode: RebuildMode,
    /// Background maintenance driving policy (the per-shard worker pool
    /// is re-created under [`MaintenancePolicy::Periodic`]).
    pub maintenance: MaintenancePolicy,
    /// Query fan-out execution model for the restored store (see
    /// [`FanOutPolicy`]).
    pub fan_out: FanOutPolicy,
}

impl Default for RestoreOptions {
    fn default() -> Self {
        RestoreOptions {
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_millis(1)),
            fan_out: FanOutPolicy::Pooled,
        }
    }
}

fn shard_file_name(generation: u64, shard: usize) -> String {
    format!("shard-g{generation:08}-{shard:04}.bin")
}

/// Reads and validates the manifest of a snapshot directory.
pub fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
    let manifest: Manifest = decode_framed(&mut std::io::Cursor::new(bytes))?;
    if manifest.route_algo != ROUTE_SPLITMIX64 {
        return Err(PersistError::manifest(format!(
            "unknown routing algorithm {}",
            manifest.route_algo
        )));
    }
    if manifest.num_shards == 0 || manifest.num_shards != manifest.shards.len() {
        return Err(PersistError::manifest(format!(
            "shard count {} inconsistent with {} file entries",
            manifest.num_shards,
            manifest.shards.len()
        )));
    }
    Ok(manifest)
}

/// Best-effort garbage collection: removes shard files of generations
/// other than `keep` and stale atomic-write temp files.
fn cleanup_stale(dir: &Path, keep: u64) {
    let keep_prefix = format!("shard-g{keep:08}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_shard = name.starts_with("shard-g") && !name.starts_with(&keep_prefix);
        let stale_tmp = name.starts_with('.') && name.contains(".tmp.");
        if stale_shard || stale_tmp {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Serializes every shard of a settled `store` into `dir` and commits a
/// new manifest generation. `wal_seq` is the highest WAL sequence the
/// shard state reflects ([`NO_WAL`] for WAL-less stores).
pub(crate) fn write_snapshot<I>(
    store: &ShardedStore<I>,
    dir: &Path,
    wal_seq: u64,
) -> Result<SnapshotStats, PersistError>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    std::fs::create_dir_all(dir)?;
    // Pick the next generation so new shard files never collide with the
    // ones the committed manifest points to. A *missing* manifest means a
    // fresh directory, and a corrupt one means the previous snapshot is
    // already unrecoverable — both safely restart at generation 1. Any
    // other I/O failure must propagate: falling back would reuse a
    // committed generation's file names and destroy crash atomicity.
    let generation = match read_manifest(dir) {
        Ok(m) => m.generation + 1,
        Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => 1,
        Err(e @ PersistError::Io(_)) => return Err(e),
        Err(_) => 1,
    };
    // Hold every shard for the whole serialization pass: the snapshot is
    // a single point in time across shards.
    let mut guards = store.lock_all_shards();
    for guard in guards.iter_mut() {
        guard.finish_background_work();
    }
    let config = guards[0].persist_config().clone();
    let options = *guards[0].persist_options();
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(guards.len());
    for guard in guards.iter() {
        let view = guard
            .freeze()
            .expect("finish_background_work leaves the shard quiesced");
        let mut payload = Vec::new();
        write_frozen_view(&mut payload, &view)?;
        let mut framed = Vec::with_capacity(payload.len() + 24);
        write_frame(&mut framed, TAG_SHARD, &payload)?;
        encoded.push(framed);
    }
    drop(guards);

    let mut entries = Vec::with_capacity(encoded.len());
    let mut total = 0u64;
    for (shard, bytes) in encoded.iter().enumerate() {
        let file = shard_file_name(generation, shard);
        write_file_atomic(&dir.join(&file), bytes)?;
        total += bytes.len() as u64;
        entries.push(ShardFileEntry {
            file,
            bytes: bytes.len() as u64,
            crc32: crc32(bytes),
        });
    }
    let mut config_bytes = Vec::new();
    config.write_to(&mut config_bytes)?;
    let manifest = Manifest {
        generation,
        num_shards: entries.len(),
        route_algo: ROUTE_SPLITMIX64,
        index_tag: I::TAG,
        config_bytes,
        options,
        wal_seq,
        shards: entries,
    };
    let manifest_bytes = encode_framed(&manifest)?;
    // The commit point: everything before this is invisible to restore.
    write_file_atomic(&dir.join(MANIFEST_FILE), &manifest_bytes)?;
    total += manifest_bytes.len() as u64;
    cleanup_stale(dir, generation);
    Ok(SnapshotStats {
        generation,
        shards: manifest.num_shards,
        bytes_on_disk: total,
        wal_seq,
    })
}

/// Rebuilds a store from the snapshot files the manifest points to
/// (no WAL replay — [`replay_wal`] layers that on top).
pub(crate) fn restore_snapshot<I>(
    dir: &Path,
    manifest: &Manifest,
    options: &RestoreOptions,
) -> Result<ShardedStore<I>, PersistError>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    if manifest.index_tag != I::TAG {
        return Err(PersistError::WrongType {
            found: manifest.index_tag,
            expected: I::TAG,
        });
    }
    let mut cursor = std::io::Cursor::new(manifest.config_bytes.as_slice());
    let config = I::Config::read_from(&mut cursor)?;
    if cursor.position() != manifest.config_bytes.len() as u64 {
        return Err(PersistError::corrupt("manifest: trailing config bytes"));
    }
    let mut shards = Vec::with_capacity(manifest.num_shards);
    for entry in &manifest.shards {
        let path = dir.join(&entry.file);
        let bytes = std::fs::read(&path)?;
        if bytes.len() as u64 != entry.bytes || crc32(&bytes) != entry.crc32 {
            return Err(PersistError::corrupt(format!(
                "shard file {} does not match its manifest entry",
                entry.file
            )));
        }
        let mut reader = std::io::Cursor::new(bytes);
        let payload = read_frame(&mut reader, TAG_SHARD)?;
        let mut payload_reader = std::io::Cursor::new(payload);
        let parts = read_frozen_parts::<I, _>(&mut payload_reader)?;
        if payload_reader.position() != payload_reader.get_ref().len() as u64 {
            return Err(PersistError::corrupt(format!(
                "shard file {}: trailing payload bytes",
                entry.file
            )));
        }
        let index = Transform2Index::thaw(config.clone(), manifest.options, options.mode, parts)
            .map_err(PersistError::corrupt)?;
        shards.push(index);
    }
    Ok(ShardedStore::from_shard_indexes(
        shards,
        options.maintenance,
        options.fan_out,
    ))
}

/// Replays every WAL record with sequence `> after_seq` through the
/// store's normal insert/delete path, returning the highest sequence
/// seen (or `after_seq` if the logs are empty).
pub(crate) fn replay_wal<I>(
    store: &ShardedStore<I>,
    dir: &Path,
    after_seq: u64,
) -> Result<u64, PersistError>
where
    I: StaticIndex + Sync,
{
    let mut max_seq = after_seq;
    for shard in 0..store.num_shards() {
        for (seq, record) in read_wal_records(&wal_path(dir, shard))? {
            max_seq = max_seq.max(seq);
            if seq <= after_seq {
                continue;
            }
            match record {
                WalRecord::InsertBatch(docs) => {
                    for (id, bytes) in docs {
                        if store.contains(id) {
                            return Err(PersistError::corrupt(format!(
                                "wal replays document {id} already present in the snapshot"
                            )));
                        }
                        store.insert(id, &bytes);
                    }
                }
                WalRecord::DeleteBatch(ids) => {
                    for id in ids {
                        store.delete(id);
                    }
                }
            }
        }
    }
    Ok(max_seq)
}

/// Snapshot/restore as methods on [`ShardedStore`].
///
/// `snapshot` quiesces the store (all shard locks held, background work
/// installed) and writes a point-in-time image; `restore` reads the
/// latest committed manifest, rebuilds every shard, re-creates the
/// resident worker pool (per [`RestoreOptions::maintenance`] and
/// [`RestoreOptions::fan_out`]), and — when the directory carries a
/// write-ahead log (see `DurableStore`) — replays the logged tail
/// through the normal dynamic-buffer path, recovering the exact
/// pre-crash logical state.
///
/// # Examples
///
/// ```
/// use dyndex_core::FmConfig;
/// use dyndex_persist::{RestoreOptions, StorePersist};
/// use dyndex_store::{ShardedStore, StoreOptions};
/// use dyndex_text::FmIndexCompressed;
///
/// let dir = std::env::temp_dir().join(format!("dyndex-sp-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let store: ShardedStore<FmIndexCompressed> =
///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
/// store.insert(1, b"snapshot me");
/// store.snapshot(&dir).unwrap();
/// let restored: ShardedStore<FmIndexCompressed> =
///     ShardedStore::restore(&dir, RestoreOptions::default()).unwrap();
/// assert_eq!(restored.count(b"snapshot"), 1);
/// assert_eq!(restored.worker_threads(), restored.num_shards()); // pool re-created
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub trait StorePersist: Sized {
    /// Writes a point-in-time snapshot of `self` into `dir`.
    fn snapshot(&self, dir: &Path) -> Result<SnapshotStats, PersistError>;

    /// Rebuilds a store from the snapshot (plus WAL tail) in `dir`.
    fn restore(dir: &Path, options: RestoreOptions) -> Result<Self, PersistError>;
}

impl<I> StorePersist for ShardedStore<I>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    fn snapshot(&self, dir: &Path) -> Result<SnapshotStats, PersistError> {
        write_snapshot(self, dir, NO_WAL)
    }

    fn restore(dir: &Path, options: RestoreOptions) -> Result<Self, PersistError> {
        let manifest = read_manifest(dir)?;
        let store = restore_snapshot::<I>(dir, &manifest, &options)?;
        if manifest.wal_seq != NO_WAL {
            replay_wal(&store, dir, manifest.wal_seq)?;
        }
        Ok(store)
    }
}
