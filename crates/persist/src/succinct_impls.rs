//! [`Persist`] implementations for the succinct substrate layer.
//!
//! Encoding policy: the *information-carrying* bits (backing words,
//! packed integers, code tables) are written verbatim; *acceleration*
//! state — rank/select directories, Huffman decode maps, Elias–Fano
//! bucket counts — is re-derived on read with a linear scan. That keeps
//! files minimal and means a decoded structure can never hold a
//! directory inconsistent with its data.

use crate::codec::{
    read_bool, read_u32, read_u64, read_u64_vec, read_usize, write_bool, write_u32, write_u64,
    write_u64_slice, write_usize, Persist,
};
use crate::error::PersistError;
use dyndex_succinct::bits::{bits_for, low_mask};
use dyndex_succinct::huffman::Code;
use dyndex_succinct::{BitVec, EliasFano, HuffmanWavelet, IntVec, RankSelect, WaveletMatrix};
use std::io::{Read, Write};

const WORD_BITS: usize = 64;

/// Validates that `words` is exactly the backing store of a `len`-bit
/// vector (right word count, zero tail bits).
fn check_words(words: &[u64], len: usize, what: &str) -> Result<(), PersistError> {
    if words.len() != len.div_ceil(WORD_BITS) {
        return Err(PersistError::corrupt(format!(
            "{what}: word count mismatch"
        )));
    }
    if !len.is_multiple_of(WORD_BITS) {
        if let Some(&last) = words.last() {
            if last & !low_mask(len % WORD_BITS) != 0 {
                return Err(PersistError::corrupt(format!("{what}: tail bits not zero")));
            }
        }
    }
    Ok(())
}

impl Persist for BitVec {
    const TAG: u16 = 0x0001;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_usize(w, self.len())?;
        write_u64_slice(w, self.words())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let len = read_usize(r)?;
        let words = read_u64_vec(r)?;
        check_words(&words, len, "bitvec")?;
        Ok(BitVec::from_raw_parts(words, len))
    }
}

impl Persist for IntVec {
    const TAG: u16 = 0x0002;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_usize(w, self.width())?;
        write_usize(w, self.len())?;
        write_u64_slice(w, self.raw_words())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let width = read_usize(r)?;
        let len = read_usize(r)?;
        let data = read_u64_vec(r)?;
        if !(1..=64).contains(&width) {
            return Err(PersistError::corrupt("intvec: width out of range"));
        }
        let Some(bits) = len.checked_mul(width) else {
            return Err(PersistError::corrupt("intvec: length overflow"));
        };
        if data.len() != bits.div_ceil(WORD_BITS) {
            return Err(PersistError::corrupt("intvec: word count mismatch"));
        }
        if !bits.is_multiple_of(WORD_BITS) {
            if let Some(&last) = data.last() {
                if last & !low_mask(bits % WORD_BITS) != 0 {
                    return Err(PersistError::corrupt("intvec: tail bits not zero"));
                }
            }
        }
        Ok(IntVec::from_raw_parts(data, width, len))
    }
}

impl Persist for RankSelect {
    const TAG: u16 = 0x0003;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.bit_vec().write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        Ok(RankSelect::new(BitVec::read_from(r)?))
    }
}

impl Persist for EliasFano {
    const TAG: u16 = 0x0004;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let (high, low, low_width) = self.persist_parts();
        high.write_to(w)?;
        low.write_to(w)?;
        write_usize(w, low_width)?;
        write_u64(w, self.universe())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let high = RankSelect::read_from(r)?;
        let low = IntVec::read_from(r)?;
        let low_width = read_usize(r)?;
        let universe = read_u64(r)?;
        if low.len() != high.count_ones() {
            return Err(PersistError::corrupt(
                "elias-fano: low/high length mismatch",
            ));
        }
        if low.width() != low_width {
            return Err(PersistError::corrupt("elias-fano: low width mismatch"));
        }
        Ok(EliasFano::from_persist_parts(
            high, low, low_width, universe,
        ))
    }
}

impl Persist for WaveletMatrix {
    const TAG: u16 = 0x0005;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let (levels, width) = self.persist_parts();
        write_usize(w, self.len())?;
        write_u32(w, self.sigma())?;
        write_u32(w, width)?;
        write_usize(w, levels.len())?;
        for level in levels {
            level.write_to(w)?;
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let len = read_usize(r)?;
        let sigma = read_u32(r)?;
        let width = read_u32(r)?;
        let count = read_usize(r)?;
        if sigma == 0 {
            return Err(PersistError::corrupt("wavelet: empty alphabet"));
        }
        let expect_width = if sigma <= 1 {
            1
        } else {
            bits_for(sigma as u64 - 1)
        };
        if width != expect_width || count != width as usize {
            return Err(PersistError::corrupt("wavelet: level count mismatch"));
        }
        let mut levels = Vec::with_capacity(count);
        for l in 0..count {
            let rs = RankSelect::read_from(r)?;
            if rs.len() != len {
                return Err(PersistError::corrupt(format!(
                    "wavelet: level {l} length mismatch"
                )));
            }
            levels.push(rs);
        }
        Ok(WaveletMatrix::from_persist_parts(levels, len, sigma, width))
    }
}

const NO_CHILD_WIRE: u64 = u64::MAX;

fn child_to_wire(c: usize) -> u64 {
    if c == usize::MAX {
        NO_CHILD_WIRE
    } else {
        c as u64
    }
}

fn child_from_wire(c: u64) -> Result<usize, PersistError> {
    if c == NO_CHILD_WIRE {
        Ok(usize::MAX)
    } else {
        usize::try_from(c).map_err(|_| PersistError::corrupt("huffman: child index overflow"))
    }
}

impl Persist for HuffmanWavelet {
    const TAG: u16 = 0x0006;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let (codes, nodes, root, single) = self.persist_parts();
        write_usize(w, self.len())?;
        match single {
            Some(sym) => {
                write_bool(w, true)?;
                write_u32(w, sym)?;
            }
            None => write_bool(w, false)?,
        }
        write_usize(w, codes.len())?;
        for code in codes {
            write_u64(w, code.bits)?;
            write_u32(w, code.len)?;
        }
        write_u64(w, child_to_wire(root))?;
        write_usize(w, nodes.len())?;
        for (bits, left, right) in nodes {
            bits.write_to(w)?;
            write_u64(w, child_to_wire(left))?;
            write_u64(w, child_to_wire(right))?;
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let len = read_usize(r)?;
        let single = if read_bool(r)? {
            Some(read_u32(r)?)
        } else {
            None
        };
        let n_codes = read_usize(r)?;
        let mut codes = Vec::with_capacity(n_codes.min(1 << 16));
        for _ in 0..n_codes {
            let bits = read_u64(r)?;
            let clen = read_u32(r)?;
            if clen > 64 {
                return Err(PersistError::corrupt("huffman: code longer than 64 bits"));
            }
            codes.push(Code { bits, len: clen });
        }
        let root = child_from_wire(read_u64(r)?)?;
        let n_nodes = read_usize(r)?;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 16));
        for _ in 0..n_nodes {
            let bits = RankSelect::read_from(r)?;
            let left = child_from_wire(read_u64(r)?)?;
            let right = child_from_wire(read_u64(r)?)?;
            nodes.push((bits, left, right));
        }
        HuffmanWavelet::from_persist_parts(codes, nodes, root, len, single)
            .map_err(PersistError::corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist>(value: &T) -> T {
        let mut buf = Vec::new();
        value.write_to(&mut buf).expect("write");
        let mut cursor = std::io::Cursor::new(&buf);
        let back = T::read_from(&mut cursor).expect("read");
        assert_eq!(cursor.position(), buf.len() as u64, "fully consumed");
        back
    }

    #[test]
    fn bitvec_roundtrip() {
        for n in [0usize, 1, 63, 64, 65, 1000] {
            let bv = BitVec::from_bits((0..n).map(|i| i % 3 == 1));
            let back = roundtrip(&bv);
            assert_eq!(back, bv);
        }
    }

    #[test]
    fn bitvec_rejects_dirty_tail() {
        let mut buf = Vec::new();
        BitVec::from_bits((0..10).map(|i| i % 2 == 0))
            .write_to(&mut buf)
            .unwrap();
        *buf.last_mut().unwrap() = 0xFF; // set bits beyond len
        assert!(BitVec::read_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn intvec_roundtrip() {
        for width in [1usize, 13, 64] {
            let mut v = IntVec::new(width);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            for i in 0..200u64 {
                v.push(i.wrapping_mul(0x9E3779B97F4A7C15) & mask);
            }
            let back = roundtrip(&v);
            assert_eq!(back, v);
        }
    }

    #[test]
    fn rank_select_roundtrip_rebuilds_directory() {
        let rs = RankSelect::new(BitVec::from_bits((0..3000).map(|i| i % 7 < 3)));
        let back = roundtrip(&rs);
        assert_eq!(back.len(), rs.len());
        for i in (0..=3000).step_by(97) {
            assert_eq!(back.rank1(i), rs.rank1(i), "rank1({i})");
        }
        for k in (0..rs.count_ones()).step_by(131) {
            assert_eq!(back.select1(k), rs.select1(k), "select1({k})");
        }
    }

    #[test]
    fn elias_fano_roundtrip() {
        let values: Vec<u64> = (0..500).map(|i| i * 37 + (i % 3)).collect();
        let ef = EliasFano::new(&values, 20_000);
        let back = roundtrip(&ef);
        assert_eq!(back.len(), ef.len());
        assert_eq!(back.universe(), ef.universe());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(back.get(i), v);
        }
        assert_eq!(back.rank(1234), ef.rank(1234));
        assert_eq!(back.predecessor(9999), ef.predecessor(9999));
    }

    #[test]
    fn wavelet_matrix_roundtrip() {
        let seq: Vec<u32> = (0..1200u64)
            .map(|i| ((i.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % 23) as u32)
            .collect();
        let wm = WaveletMatrix::new(&seq, 23);
        let back = roundtrip(&wm);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(back.access(i), s, "access({i})");
        }
        for sym in 0..23 {
            assert_eq!(back.rank(sym, seq.len()), wm.rank(sym, seq.len()));
            assert_eq!(back.select(sym, 0), wm.select(sym, 0));
        }
    }

    #[test]
    fn huffman_rejects_forged_length() {
        // A consistent tree with a tampered sequence length must fail
        // decode (it used to pass and panic on the first query).
        let seq: Vec<u32> = (0..200u32).map(|i| i % 5).collect();
        let hw = HuffmanWavelet::new(&seq, 5);
        let mut buf = Vec::new();
        hw.write_to(&mut buf).unwrap();
        buf[..8].copy_from_slice(&(seq.len() as u64 + 7).to_le_bytes());
        assert!(HuffmanWavelet::read_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn huffman_roundtrip_including_degenerate() {
        for seq in [
            Vec::<u32>::new(),
            vec![5; 40],
            (0..900u32).map(|i| i * 31 % 17).collect::<Vec<_>>(),
        ] {
            let hw = HuffmanWavelet::new(&seq, 17);
            let back = roundtrip(&hw);
            assert_eq!(back.len(), hw.len());
            for (i, &s) in seq.iter().enumerate() {
                assert_eq!(back.access(i), s, "access({i})");
            }
            for sym in 0..17u32 {
                assert_eq!(back.rank(sym, seq.len()), hw.rank(sym, seq.len()));
                assert_eq!(back.select(sym, 3), hw.select(sym, 3));
            }
        }
    }
}
