//! [`Persist`] implementations for the text layer: the FM-index with its
//! document-id map, SA/ISA samples, and Elias–Fano document directory.
//!
//! Serializing an FM-index is the big cold-start win: construction pays
//! a suffix sort (`SA-IS`) plus wavelet building over the whole text,
//! while decoding pays only linear scans to re-derive rank directories.

use crate::codec::{
    read_u64_vec, read_usize, read_usize_vec, write_u64_slice, write_usize, write_usize_slice,
    Persist,
};
use crate::error::PersistError;
use dyndex_succinct::{EliasFano, IntVec, RankSelect, Sequence};
use dyndex_text::fm_index::{FmIndexParts, FmIndexView};
use dyndex_text::FmIndex;
use std::io::{Read, Write};

impl<S: Sequence + Persist + Send + 'static> Persist for FmIndex<S> {
    /// Distinct per BWT representation: `0x0100 | S::TAG`.
    const TAG: u16 = 0x0100 | S::TAG;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let FmIndexView {
            bwt,
            c,
            marked,
            sa_samples,
            inv_samples,
            sample_rate,
            n,
            doc_ids,
            doc_starts,
        } = self.persist_view();
        bwt.write_to(w)?;
        write_usize_slice(w, c)?;
        marked.write_to(w)?;
        sa_samples.write_to(w)?;
        inv_samples.write_to(w)?;
        write_usize(w, sample_rate)?;
        write_usize(w, n)?;
        write_u64_slice(w, doc_ids)?;
        doc_starts.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let bwt = S::read_from(r)?;
        let c = read_usize_vec(r)?;
        let marked = RankSelect::read_from(r)?;
        let sa_samples = IntVec::read_from(r)?;
        let inv_samples = IntVec::read_from(r)?;
        let sample_rate = read_usize(r)?;
        let n = read_usize(r)?;
        let doc_ids = read_u64_vec(r)?;
        let doc_starts = EliasFano::read_from(r)?;
        FmIndex::from_persist_parts(FmIndexParts {
            bwt,
            c,
            marked,
            sa_samples,
            inv_samples,
            sample_rate,
            n,
            doc_ids,
            doc_starts,
        })
        .map_err(PersistError::corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_succinct::{HuffmanWavelet, WaveletMatrix};

    const DOCS: &[(u64, &[u8])] = &[
        (10, b"the quick brown fox jumps over the lazy dog"),
        (20, b"pack my box with five dozen liquor jugs"),
        (30, b""),
        (40, b"aaaaa"),
    ];

    fn exercise<S: Sequence + Persist + Send + 'static>() {
        let fm = FmIndex::<S>::build(DOCS, 4);
        let mut buf = Vec::new();
        fm.write_to(&mut buf).expect("write");
        let back = FmIndex::<S>::read_from(&mut std::io::Cursor::new(&buf)).expect("read");
        for pattern in [b"the".as_slice(), b"qu", b"aa", b"zzz", b" "] {
            assert_eq!(back.count(pattern), fm.count(pattern));
            // locate order must match exactly (restored query answers must
            // be byte-identical, not just set-equal)
            assert_eq!(back.locate(pattern), fm.locate(pattern));
        }
        for (slot, (_, d)) in DOCS.iter().enumerate() {
            assert_eq!(back.extract(slot, 0, d.len()), *d);
            assert_eq!(back.doc_len(slot), d.len());
        }
        assert_eq!(back.doc_ids(), fm.doc_ids());
        assert_eq!(back.extract_all_docs(), fm.extract_all_docs());
    }

    #[test]
    fn compressed_fm_roundtrip() {
        exercise::<HuffmanWavelet>();
    }

    #[test]
    fn plain_fm_roundtrip() {
        exercise::<WaveletMatrix>();
    }

    #[test]
    fn distinct_tags_per_sequence_type() {
        assert_ne!(
            <FmIndex<HuffmanWavelet> as Persist>::TAG,
            <FmIndex<WaveletMatrix> as Persist>::TAG
        );
    }

    #[test]
    fn truncated_index_fails_cleanly() {
        let fm = FmIndex::<HuffmanWavelet>::build(DOCS, 4);
        let mut buf = Vec::new();
        fm.write_to(&mut buf).expect("write");
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            let r = FmIndex::<HuffmanWavelet>::read_from(&mut std::io::Cursor::new(&buf[..cut]));
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }
}
