//! [`Persist`] implementations for the transformation layer: build
//! configurations, dynamization options, the §2 deletion-only wrapper,
//! and the frozen decomposition of a quiesced `Transform2Index` (the
//! payload of one shard's snapshot file).

use crate::codec::{
    read_bool, read_bytes, read_f64, read_u64, read_u64_vec, read_u8, read_usize, write_bool,
    write_bytes, write_f64, write_u64, write_u8, write_usize, Persist,
};
use crate::error::PersistError;
use dyndex_core::transform2::FrozenSnapshot;
use dyndex_core::{DeletionOnlyIndex, DynOptions, FmConfig, Growth, StaticIndex};
use dyndex_succinct::BitVec;
use std::io::{Read, Write};

impl Persist for FmConfig {
    const TAG: u16 = 0x0020;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_usize(w, self.sample_rate)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let sample_rate = read_usize(r)?;
        if sample_rate == 0 {
            return Err(PersistError::corrupt("fm config: zero sample rate"));
        }
        Ok(FmConfig { sample_rate })
    }
}

/// The unit config (e.g. `SaIndex`'s) persists as nothing at all.
impl Persist for () {
    const TAG: u16 = 0x0021;

    fn write_to<W: Write>(&self, _w: &mut W) -> std::io::Result<()> {
        Ok(())
    }

    fn read_from<R: Read>(_r: &mut R) -> Result<Self, PersistError> {
        Ok(())
    }
}

impl Persist for DynOptions {
    const TAG: u16 = 0x0022;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_usize(w, self.tau)?;
        write_bool(w, self.counting)?;
        match self.growth {
            Growth::PolyLog { eps } => {
                write_u8(w, 0)?;
                write_f64(w, eps)?;
            }
            Growth::Doubling => write_u8(w, 1)?,
        }
        write_usize(w, self.min_capacity)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let tau = read_usize(r)?;
        let counting = read_bool(r)?;
        let growth = match read_u8(r)? {
            0 => {
                let eps = read_f64(r)?;
                if !eps.is_finite() || eps <= 0.0 || eps > 1.0 {
                    return Err(PersistError::corrupt("options: eps out of range"));
                }
                Growth::PolyLog { eps }
            }
            1 => Growth::Doubling,
            k => {
                return Err(PersistError::corrupt(format!(
                    "options: bad growth kind {k}"
                )))
            }
        };
        let min_capacity = read_usize(r)?;
        if tau == 0 || min_capacity == 0 {
            return Err(PersistError::corrupt("options: zero tau or min_capacity"));
        }
        Ok(DynOptions {
            tau,
            counting,
            growth,
            min_capacity,
        })
    }
}

impl<I: StaticIndex + Persist> Persist for DeletionOnlyIndex<I> {
    /// Distinct per wrapped index type: `0x0200 | I::TAG`.
    const TAG: u16 = 0x0200 | I::TAG;

    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.inner().write_to(w)?;
        self.persist_alive_bits().write_to(w)?;
        write_bool(w, self.counting_enabled())?;
        // Alive ids sorted so identical logical state encodes to
        // identical bytes (the in-memory slot map is hash-ordered).
        let mut ids: Vec<u64> = self.doc_ids().collect();
        ids.sort_unstable();
        write_usize(w, ids.len())?;
        for id in ids {
            write_u64(w, id)?;
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let index = I::read_from(r)?;
        let alive = BitVec::read_from(r)?;
        let counting = read_bool(r)?;
        let ids = read_u64_vec(r)?;
        DeletionOnlyIndex::from_persist_parts(index, &alive, counting, &ids)
            .map_err(PersistError::corrupt)
    }
}

// ---------------------------------------------------------------------
// Per-shard snapshot meta (C0 + scheduling scalars).
// ---------------------------------------------------------------------

/// The non-level part of a frozen shard, decoded: everything a shard's
/// snapshot carries *besides* the per-level content files — `C0`'s
/// documents in age order and the scheduling scalars needed to resume
/// exactly where the snapshot left off. The static structures
/// themselves live in their own `(shard, level, epoch)`-named files so
/// unchanged ones can be shared between snapshot generations (see
/// `snapshot.rs`).
pub(crate) struct ShardMeta {
    pub c0_docs: Vec<(u64, Vec<u8>)>,
    pub num_levels: usize,
    pub num_top_slots: usize,
    pub nf: usize,
    pub n: usize,
    pub deleted_since_maintenance: usize,
    pub epoch_counter: u64,
}

/// Serializes the meta part of a quiesced shard decomposition (see
/// `Transform2Index::freeze`).
pub(crate) fn write_shard_meta<I, W>(w: &mut W, frozen: &FrozenSnapshot<I>) -> std::io::Result<()>
where
    I: StaticIndex,
    W: Write,
{
    write_usize(w, frozen.n)?;
    write_usize(w, frozen.nf)?;
    write_usize(w, frozen.deleted_since_maintenance)?;
    write_usize(w, frozen.num_levels)?;
    write_usize(w, frozen.num_top_slots)?;
    write_u64(w, frozen.epoch_counter)?;
    write_usize(w, frozen.c0_docs.len())?;
    for (id, bytes) in &frozen.c0_docs {
        write_u64(w, *id)?;
        write_bytes(w, bytes)?;
    }
    Ok(())
}

/// Decodes the counterpart of [`write_shard_meta`]'s output.
pub(crate) fn read_shard_meta<R: Read>(r: &mut R) -> Result<ShardMeta, PersistError> {
    let n = read_usize(r)?;
    let nf = read_usize(r)?;
    let deleted_since_maintenance = read_usize(r)?;
    let num_levels = read_usize(r)?;
    let num_top_slots = read_usize(r)?;
    let epoch_counter = read_u64(r)?;
    let n_c0 = read_usize(r)?;
    let mut c0_docs = Vec::with_capacity(n_c0.min(1 << 16));
    for _ in 0..n_c0 {
        let id = read_u64(r)?;
        let bytes = read_bytes(r)?;
        c0_docs.push((id, bytes));
    }
    Ok(ShardMeta {
        c0_docs,
        num_levels,
        num_top_slots,
        nf,
        n,
        deleted_since_maintenance,
        epoch_counter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::{RebuildMode, Transform2Index};
    use dyndex_succinct::HuffmanWavelet;
    use dyndex_text::FmIndex;

    type Fm = FmIndex<HuffmanWavelet>;

    fn opts() -> DynOptions {
        DynOptions {
            min_capacity: 32,
            tau: 4,
            ..DynOptions::default()
        }
    }

    #[test]
    fn dyn_options_roundtrip() {
        for o in [
            DynOptions::default(),
            DynOptions {
                growth: Growth::Doubling,
                counting: false,
                ..DynOptions::default()
            },
        ] {
            let mut buf = Vec::new();
            o.write_to(&mut buf).unwrap();
            let back = DynOptions::read_from(&mut std::io::Cursor::new(buf)).unwrap();
            assert_eq!(back.tau, o.tau);
            assert_eq!(back.counting, o.counting);
            assert_eq!(back.growth, o.growth);
            assert_eq!(back.min_capacity, o.min_capacity);
        }
    }

    #[test]
    fn deletion_only_roundtrip_preserves_order() {
        let docs: &[(u64, &[u8])] = &[
            (1, b"abracadabra"),
            (2, b"bazaar bazaar"),
            (3, b"cadillac"),
            (4, b"abra"),
        ];
        let mut del = DeletionOnlyIndex::<Fm>::build(docs, &FmConfig { sample_rate: 4 }, true);
        del.delete(2);
        let mut buf = Vec::new();
        del.write_to(&mut buf).unwrap();
        let back =
            DeletionOnlyIndex::<Fm>::read_from(&mut std::io::Cursor::new(&buf)).expect("read");
        assert_eq!(back.num_docs(), del.num_docs());
        assert_eq!(back.alive_symbols(), del.alive_symbols());
        assert_eq!(back.dead_symbols(), del.dead_symbols());
        for p in [b"abra".as_slice(), b"a", b"za", b"qqq"] {
            // exact order, not just set equality
            assert_eq!(back.find(p), del.find(p));
            assert_eq!(back.find_limit(p, 2), del.find_limit(p, 2));
            assert_eq!(back.count(p), del.count(p));
        }
    }

    /// Serializes a frozen shard the way the snapshot layer does — one
    /// meta payload plus one `Persist` payload per level — and
    /// reassembles it into an owned [`FrozenSnapshot`].
    fn roundtrip_frozen(frozen: &FrozenSnapshot<Fm>) -> FrozenSnapshot<Fm> {
        let mut meta_buf = Vec::new();
        write_shard_meta(&mut meta_buf, frozen).unwrap();
        let meta = read_shard_meta(&mut std::io::Cursor::new(&meta_buf)).expect("meta read");
        let levels = frozen
            .levels
            .iter()
            .map(|level| {
                let mut buf = Vec::new();
                level.index.write_to(&mut buf).unwrap();
                let back = DeletionOnlyIndex::<Fm>::read_from(&mut std::io::Cursor::new(&buf))
                    .expect("level read");
                dyndex_core::transform2::FrozenLevel {
                    slot: level.slot,
                    epoch: level.epoch,
                    index: std::sync::Arc::new(back),
                }
            })
            .collect();
        FrozenSnapshot {
            c0_docs: meta.c0_docs,
            num_levels: meta.num_levels,
            num_top_slots: meta.num_top_slots,
            levels,
            nf: meta.nf,
            n: meta.n,
            deleted_since_maintenance: meta.deleted_since_maintenance,
            epoch_counter: meta.epoch_counter,
        }
    }

    #[test]
    fn frozen_shard_roundtrip() {
        let mut idx =
            Transform2Index::<Fm>::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        for i in 0..150u64 {
            idx.insert(
                i,
                format!("frozen shard doc {i} {}", "pad".repeat(i as usize % 4)).as_bytes(),
            );
        }
        for i in (0..150u64).step_by(3) {
            idx.delete(i);
        }
        idx.finish_background_work();
        let frozen = idx.freeze().expect("quiesced after finish");
        let parts = roundtrip_frozen(&frozen);
        drop(frozen);
        let back = Transform2Index::<Fm>::thaw(
            FmConfig { sample_rate: 4 },
            opts(),
            RebuildMode::Inline,
            parts,
        )
        .expect("thaw");
        assert_eq!(back.num_docs(), idx.num_docs());
        assert_eq!(back.symbol_count(), idx.symbol_count());
        back.check_invariants();
        for p in [b"frozen".as_slice(), b"doc 1", b"pad", b"absent"] {
            assert_eq!(back.count(p), idx.count(p));
            assert_eq!(back.find(p), idx.find(p), "find order must match");
            for limit in [1usize, 7, 1000] {
                assert_eq!(
                    back.find_limit(p, limit),
                    idx.find_limit(p, limit),
                    "find_limit({limit}) must match byte-for-byte"
                );
            }
        }
        for id in 0..150u64 {
            assert_eq!(back.extract(id, 0, 64), idx.extract(id, 0, 64));
        }
    }

    #[test]
    fn thaw_rejects_wrong_options() {
        let mut idx =
            Transform2Index::<Fm>::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        for i in 0..60u64 {
            idx.insert(i, format!("doc {i}").as_bytes());
        }
        idx.finish_background_work();
        let frozen = idx.freeze().expect("quiesced");
        let parts = roundtrip_frozen(&frozen);
        drop(frozen);
        // A wildly different schedule yields a different level count.
        let wrong = DynOptions {
            min_capacity: 4096,
            tau: 2,
            growth: Growth::Doubling,
            ..DynOptions::default()
        };
        let r = Transform2Index::<Fm>::thaw(
            FmConfig { sample_rate: 4 },
            wrong,
            RebuildMode::Inline,
            parts,
        );
        assert!(r.is_err(), "mismatched options must be rejected");
    }
}
