//! The zero-dependency binary codec: little-endian primitives, the
//! [`Persist`] trait, and versioned + checksummed framing.
//!
//! ## Frame layout
//!
//! Every top-level persisted object (a snapshot manifest, one shard's
//! state) is wrapped in a frame:
//!
//! ```text
//! magic "DYXP" | version u16 | type tag u16 | payload_len u64
//! payload bytes…                                | crc32(payload) u32
//! ```
//!
//! The payload is decoded only after its CRC verifies, so decoders see
//! either authenticated bytes or a typed [`PersistError::Corrupt`] —
//! never a panic on flipped bits or truncation. Nested structures inside
//! a payload are written *unframed* (the enclosing frame's checksum
//! covers them); the per-structure [`Persist`] impls carry a stable
//! [`Persist::TAG`] so container formats can record what they hold.

use crate::error::PersistError;
use std::io::{Read, Write};

/// Magic bytes opening every frame ("DYndex eXchange/Persist").
pub const MAGIC: [u8; 4] = *b"DYXP";
/// Codec version this build writes (and the only one it reads).
pub const VERSION: u16 = 1;

/// A structure that can serialize itself to — and rebuild itself from —
/// a byte stream.
///
/// `write_to` and `read_from` must round-trip exactly: decoding what was
/// encoded yields a structurally identical value (same query answers,
/// same traversal order). Implementations re-derive redundant
/// acceleration state (rank directories, hash maps) on read instead of
/// trusting it from the wire.
///
/// # Examples
///
/// Every structure on the persistence path implements it, down to the
/// dynamization options:
///
/// ```
/// use dyndex_core::DynOptions;
/// use dyndex_persist::Persist;
///
/// let options = DynOptions::default();
/// let mut bytes = Vec::new();
/// options.write_to(&mut bytes).unwrap();
/// let back = DynOptions::read_from(&mut std::io::Cursor::new(bytes)).unwrap();
/// assert_eq!(back.tau, options.tau);
/// ```
pub trait Persist: Sized {
    /// Stable type tag identifying this structure in frames/manifests.
    const TAG: u16;

    /// Serializes into `w`.
    fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()>;

    /// Rebuilds from `r`, failing with a typed error (never panicking)
    /// on inconsistent input.
    fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError>;
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — the frame checksum.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
///
/// # Examples
///
/// ```
/// // The standard CRC-32 check value.
/// assert_eq!(dyndex_persist::codec::crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(dyndex_persist::codec::crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Primitive helpers (little-endian). The fixed-width and length-prefixed
// scalar/byte helpers are public: the wire protocol in `dyndex-serve`
// speaks the same primitive vocabulary, so both codecs share one
// implementation (and one set of bogus-length defenses).
// ---------------------------------------------------------------------

/// Writes one byte.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> std::io::Result<()> {
    w.write_all(&[v])
}

/// Writes a `u16`, little-endian.
pub fn write_u16<W: Write>(w: &mut W, v: u16) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u32`, little-endian.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u64`, little-endian.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_usize<W: Write>(w: &mut W, v: usize) -> std::io::Result<()> {
    write_u64(w, v as u64)
}

pub(crate) fn write_bool<W: Write>(w: &mut W, v: bool) -> std::io::Result<()> {
    write_u8(w, v as u8)
}

pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> std::io::Result<()> {
    write_u64(w, v.to_bits())
}

/// Writes a `u64` length prefix followed by the raw bytes.
pub fn write_bytes<W: Write>(w: &mut W, v: &[u8]) -> std::io::Result<()> {
    write_usize(w, v.len())?;
    w.write_all(v)
}

/// Writes a string as length-prefixed UTF-8 bytes.
pub fn write_str<W: Write>(w: &mut W, v: &str) -> std::io::Result<()> {
    write_bytes(w, v.as_bytes())
}

pub(crate) fn write_u64_slice<W: Write>(w: &mut W, v: &[u64]) -> std::io::Result<()> {
    write_usize(w, v.len())?;
    for &x in v {
        write_u64(w, x)?;
    }
    Ok(())
}

pub(crate) fn write_usize_slice<W: Write>(w: &mut W, v: &[usize]) -> std::io::Result<()> {
    write_usize(w, v.len())?;
    for &x in v {
        write_usize(w, x)?;
    }
    Ok(())
}

/// Reads one byte, failing with a typed error on truncation.
pub fn read_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Reads a little-endian `u16`.
pub fn read_u16<R: Read>(r: &mut R) -> Result<u16, PersistError> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

/// Reads a little-endian `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads a little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_usize<R: Read>(r: &mut R) -> Result<usize, PersistError> {
    usize::try_from(read_u64(r)?).map_err(|_| PersistError::corrupt("length exceeds usize"))
}

pub(crate) fn read_bool<R: Read>(r: &mut R) -> Result<bool, PersistError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(PersistError::corrupt(format!("bad bool byte {b:#04x}"))),
    }
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Cap on the *initial* allocation for any length-prefixed vector: bogus
/// lengths in unauthenticated bytes grow the buffer adaptively instead
/// of reserving terabytes up front.
const PREALLOC_CAP: usize = 1 << 20;

/// Reads a length-prefixed byte string (see [`write_bytes`]). A bogus
/// length allocates adaptively, never `len` bytes up front.
pub fn read_bytes<R: Read>(r: &mut R) -> Result<Vec<u8>, PersistError> {
    let len = read_usize(r)?;
    let mut out = Vec::with_capacity(len.min(PREALLOC_CAP));
    let copied = r.take(len as u64).read_to_end(&mut out)?;
    if copied != len {
        return Err(PersistError::corrupt("byte string truncated"));
    }
    Ok(out)
}

/// Reads a length-prefixed UTF-8 string (see [`write_str`]).
pub fn read_str<R: Read>(r: &mut R) -> Result<String, PersistError> {
    String::from_utf8(read_bytes(r)?).map_err(|_| PersistError::corrupt("invalid utf-8 string"))
}

pub(crate) fn read_u64_vec<R: Read>(r: &mut R) -> Result<Vec<u64>, PersistError> {
    let len = read_usize(r)?;
    let mut out = Vec::with_capacity(len.min(PREALLOC_CAP / 8));
    for _ in 0..len {
        out.push(read_u64(r)?);
    }
    Ok(out)
}

pub(crate) fn read_usize_vec<R: Read>(r: &mut R) -> Result<Vec<usize>, PersistError> {
    let len = read_usize(r)?;
    let mut out = Vec::with_capacity(len.min(PREALLOC_CAP / 8));
    for _ in 0..len {
        out.push(read_usize(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Serializes `payload` under a `tag`-typed, versioned, checksummed
/// frame and writes the whole frame to `w`.
///
/// # Examples
///
/// ```
/// use dyndex_persist::codec::{read_frame, write_frame};
///
/// let mut frame = Vec::new();
/// write_frame(&mut frame, 0x0042, b"payload").unwrap();
/// let payload = read_frame(&mut std::io::Cursor::new(&frame), 0x0042).unwrap();
/// assert_eq!(payload, b"payload");
/// // Asking for a different tag is a typed error, not a panic:
/// assert!(read_frame(&mut std::io::Cursor::new(&frame), 0x0043).is_err());
/// ```
pub fn write_frame<W: Write>(w: &mut W, tag: u16, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_u16(w, tag)?;
    write_u64(w, payload.len() as u64)?;
    w.write_all(payload)?;
    write_u32(w, crc32(payload))
}

/// Reads one frame from `r`, validating magic, version, `expected_tag`,
/// and the payload checksum; returns the authenticated payload bytes.
pub fn read_frame<R: Read>(r: &mut R, expected_tag: u16) -> Result<Vec<u8>, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(PersistError::corrupt("bad frame magic"));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            expected: VERSION,
        });
    }
    let tag = read_u16(r)?;
    if tag != expected_tag {
        return Err(PersistError::WrongType {
            found: tag,
            expected: expected_tag,
        });
    }
    let len = read_u64(r)?;
    let mut payload = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let copied = r.take(len).read_to_end(&mut payload)?;
    if copied as u64 != len {
        return Err(PersistError::corrupt("frame payload truncated"));
    }
    let crc = read_u32(r)?;
    if crc != crc32(&payload) {
        return Err(PersistError::corrupt("frame checksum mismatch"));
    }
    Ok(payload)
}

/// Frames `value` (payload serialized via [`Persist::write_to`], tag from
/// [`Persist::TAG`]) into a fresh byte buffer.
///
/// # Examples
///
/// ```
/// use dyndex_core::DynOptions;
/// use dyndex_persist::codec::{decode_framed, encode_framed};
///
/// let framed = encode_framed(&DynOptions::default()).unwrap();
/// let back: DynOptions = decode_framed(&mut std::io::Cursor::new(framed)).unwrap();
/// assert_eq!(back.min_capacity, DynOptions::default().min_capacity);
/// ```
pub fn encode_framed<T: Persist>(value: &T) -> std::io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    value.write_to(&mut payload)?;
    let mut out = Vec::with_capacity(payload.len() + 24);
    write_frame(&mut out, T::TAG, &payload)?;
    Ok(out)
}

/// Decodes a [`Persist`] value from one frame, requiring the payload to
/// be fully consumed (see [`encode_framed`] for a round-trip example).
pub fn decode_framed<T: Persist, R: Read>(r: &mut R) -> Result<T, PersistError> {
    let payload = read_frame(r, T::TAG)?;
    let mut cursor = std::io::Cursor::new(payload);
    let value = T::read_from(&mut cursor)?;
    if cursor.position() != cursor.get_ref().len() as u64 {
        return Err(PersistError::corrupt("trailing bytes after payload"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Crash-atomic file writes.
// ---------------------------------------------------------------------

/// fsyncs a directory, making previously completed renames inside it
/// durable against power loss. Unlike the best-effort directory sync
/// inside [`write_file_atomic`], failures here propagate — this is what
/// the snapshot layer calls at its manifest commit point, where a
/// silently skipped sync could lose the commit to a power failure even
/// though every data file survived. On platforms that refuse to open
/// or fsync directories (e.g. Windows) this degrades to a no-op rather
/// than failing every snapshot: the rename-based commit is still
/// process-crash safe there, just not power-failure durable.
pub(crate) fn sync_dir(dir: &std::path::Path) -> Result<(), PersistError> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: write to a same-directory temp
/// file, fsync it, rename over `path`, then fsync the directory
/// (best-effort — the snapshot commit path follows up with a mandatory,
/// error-propagating directory fsync). A crash at any point leaves
/// either the old file or the new one — never a torn mix.
pub fn write_file_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path
        .parent()
        .ok_or_else(|| PersistError::corrupt("target path has no parent directory"))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| PersistError::corrupt("target path has no file name"))?;
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Ok(d) = std::fs::File::open(dir) {
        // Directory fsync makes the rename itself durable; best-effort on
        // platforms that refuse to fsync directories.
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        write_u16(&mut buf, 300).unwrap();
        write_u32(&mut buf, 70_000).unwrap();
        write_u64(&mut buf, u64::MAX - 1).unwrap();
        write_bool(&mut buf, true).unwrap();
        write_f64(&mut buf, 0.5).unwrap();
        write_bytes(&mut buf, b"hello").unwrap();
        write_str(&mut buf, "né").unwrap();
        write_u64_slice(&mut buf, &[1, 2, 3]).unwrap();
        write_usize_slice(&mut buf, &[9, 10]).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_u8(&mut r).unwrap(), 7);
        assert_eq!(read_u16(&mut r).unwrap(), 300);
        assert_eq!(read_u32(&mut r).unwrap(), 70_000);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 1);
        assert!(read_bool(&mut r).unwrap());
        assert_eq!(read_f64(&mut r).unwrap(), 0.5);
        assert_eq!(read_bytes(&mut r).unwrap(), b"hello");
        assert_eq!(read_str(&mut r).unwrap(), "né");
        assert_eq!(read_u64_vec(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(read_usize_vec(&mut r).unwrap(), vec![9, 10]);
    }

    #[test]
    fn frame_rejects_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"payload bytes").unwrap();
        // intact
        let got = read_frame(&mut std::io::Cursor::new(buf.clone()), 0x42).unwrap();
        assert_eq!(got, b"payload bytes");
        // wrong tag
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf.clone()), 0x43),
            Err(PersistError::WrongType { .. })
        ));
        // flipped payload byte
        let mut bad = buf.clone();
        bad[20] ^= 0x01;
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(bad), 0x42),
            Err(PersistError::Corrupt { .. })
        ));
        // truncated
        let short = &buf[..buf.len() - 3];
        assert!(read_frame(&mut std::io::Cursor::new(short.to_vec()), 0x42).is_err());
        // bad version
        let mut vbad = buf.clone();
        vbad[4] = 0xEE;
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(vbad), 0x42),
            Err(PersistError::UnsupportedVersion { .. })
        ));
        // bad magic
        let mut mbad = buf;
        mbad[0] = b'X';
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(mbad), 0x42),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn bogus_length_does_not_overallocate() {
        // A length prefix of 2^60 must fail with a typed error, not abort
        // on allocation.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1u64 << 60).unwrap();
        buf.extend_from_slice(b"short");
        assert!(read_bytes(&mut std::io::Cursor::new(buf)).is_err());
    }
}
