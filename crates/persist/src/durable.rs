//! [`DurableStore`]: a [`ShardedStore`] that survives restarts.
//!
//! Every mutation is appended to the owning shard's write-ahead log
//! before it is applied in memory, so the on-disk state (last snapshot
//! plus WAL tails) always covers the in-memory state. [`DurableStore::open`]
//! restores the last committed snapshot, replays the tails through
//! the normal dynamic-buffer path — recovering the exact pre-crash
//! logical state without rebuilding any static index — and re-creates
//! the store's resident worker pool per
//! [`RestoreOptions`](crate::RestoreOptions).
//!
//! Queries delegate straight to the wrapped store (same fan-out, same
//! deterministic merge); only mutations pay the logging detour.

use crate::codec::Persist;
use crate::error::PersistError;
use crate::snapshot::{
    read_manifest, replay_wal, restore_snapshot, write_snapshot, RestoreOptions, SnapshotMode,
    SnapshotStats, MANIFEST_FILE,
};
use crate::wal::{read_wal_records, wal_path, WalMetrics, WalOptions, WalRecord, WalWriter};
use dyndex_core::StaticIndex;
use dyndex_obs::{MetricsRegistry, QuerySpan};
use dyndex_store::{IngestStats, ShardedStore, StoreOptions, StoreStats};
use dyndex_text::Occurrence;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A sharded store with a snapshot directory and per-shard write-ahead
/// logs. All methods take `&self` (internal synchronization), matching
/// the wrapped [`ShardedStore`].
pub struct DurableStore<I>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    store: ShardedStore<I>,
    dir: PathBuf,
    /// One log per shard; the mutex also serializes same-shard writers
    /// so log order matches apply order.
    wals: Vec<Mutex<WalWriter>>,
    /// Global mutation sequence; each logged record gets the next value.
    seq: AtomicU64,
    /// Bytes on disk of the last committed snapshot.
    snapshot_bytes: AtomicU64,
}

impl<I> DurableStore<I>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    /// Creates a fresh durable store in `dir` (which must not already
    /// hold one): builds the in-memory store, commits an initial empty
    /// snapshot, and opens the logs with the default [`WalOptions`]
    /// (snapshot-paced fsync; see [`DurableStore::create_with_wal`] for
    /// per-record or group-commit durability).
    pub fn create(
        dir: &Path,
        config: I::Config,
        options: StoreOptions,
    ) -> Result<Self, PersistError> {
        Self::create_with_wal(dir, config, options, WalOptions::default())
    }

    /// [`DurableStore::create`] with an explicit write-ahead-log fsync
    /// policy (see [`SyncPolicy`](crate::SyncPolicy)): `PerRecord` for
    /// no-loss power-failure durability, `EveryN` for group commit,
    /// `OnSnapshot` (default) for snapshot-paced durability.
    pub fn create_with_wal(
        dir: &Path,
        config: I::Config,
        options: StoreOptions,
        wal: WalOptions,
    ) -> Result<Self, PersistError> {
        if dir.join(MANIFEST_FILE).exists() {
            return Err(PersistError::manifest(format!(
                "{} already holds a durable store (use open)",
                dir.display()
            )));
        }
        let store = ShardedStore::new(config, options);
        let stats = write_snapshot(&store, dir, 0, SnapshotMode::default())?;
        let wals = Self::open_wals(dir, &store, wal)?;
        Ok(DurableStore {
            store,
            dir: dir.to_path_buf(),
            wals,
            seq: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(stats.bytes_on_disk),
        })
    }

    /// Opens an existing durable store: restores the last committed
    /// snapshot, replays the WAL tails, resumes logging after the
    /// highest replayed sequence number, and re-creates the per-shard
    /// worker pool (per `options.maintenance` / `options.fan_out`) so
    /// the reopened store serves pooled queries and background installs
    /// exactly like the one that wrote the snapshot. See the crate-level
    /// example for the full create → mutate → reopen round-trip.
    pub fn open(dir: &Path, options: RestoreOptions) -> Result<Self, PersistError> {
        let manifest = read_manifest(dir)?;
        let store = restore_snapshot::<I>(dir, &manifest, &options)?;
        let max_seq = if manifest.wal_seq == crate::snapshot::NO_WAL {
            // The snapshot was written without WAL coverage (plain
            // `StorePersist::snapshot`). NO_WAL means "do not replay" —
            // but if logs with records coexist, whether they pre- or
            // post-date the snapshot is unknowable; refuse rather than
            // guess (re-applying covered records would corrupt state).
            for shard in 0..store.num_shards() {
                if !read_wal_records(&wal_path(dir, shard))?.is_empty() {
                    return Err(PersistError::manifest(
                        "snapshot carries no WAL watermark but write-ahead logs \
                         contain records; re-snapshot through DurableStore or \
                         remove the stale wal/ directory",
                    ));
                }
            }
            0
        } else {
            replay_wal(&store, dir, manifest.wal_seq)?
        };
        let wals = Self::open_wals(dir, &store, options.wal)?;
        // Same accounting as SnapshotStats::bytes_on_disk: every
        // referenced file (meta + level) plus the manifest itself.
        let snapshot_bytes =
            manifest.referenced_bytes() + std::fs::metadata(dir.join(MANIFEST_FILE))?.len();
        Ok(DurableStore {
            store,
            dir: dir.to_path_buf(),
            wals,
            seq: AtomicU64::new(max_seq),
            snapshot_bytes: AtomicU64::new(snapshot_bytes),
        })
    }

    /// Opens one log per shard, pointing each writer at the store's WAL
    /// latency histograms when telemetry is enabled.
    fn open_wals(
        dir: &Path,
        store: &ShardedStore<I>,
        options: WalOptions,
    ) -> Result<Vec<Mutex<WalWriter>>, PersistError> {
        let num_shards = store.num_shards();
        let metrics = store
            .metrics()
            .map(|registry| WalMetrics::register(&registry, num_shards, store.flight_recorder()));
        (0..num_shards)
            .map(|s| {
                let mut writer = WalWriter::open_append(wal_path(dir, s), options)?;
                writer.set_metrics(metrics.clone(), s);
                Ok(Mutex::new(writer))
            })
            .collect()
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped in-memory store. Queries through it are fine;
    /// mutations through it would bypass the log and be lost on restart —
    /// use this store's own mutation methods.
    pub fn store(&self) -> &ShardedStore<I> {
        &self.store
    }

    fn wal(&self, shard: usize) -> MutexGuard<'_, WalWriter> {
        self.wals[shard].lock().expect("wal lock poisoned")
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    // ------------------------------------------------------------------
    // Logged mutations
    // ------------------------------------------------------------------

    /// Inserts one document (logged, then applied).
    ///
    /// # Panics
    /// Panics if `doc_id` is already present (same contract as
    /// [`ShardedStore::insert`]) — checked *before* the log is written.
    pub fn insert(&self, doc_id: u64, bytes: &[u8]) -> Result<(), PersistError> {
        self.insert_batch(&[(doc_id, bytes.to_vec())])
    }

    /// Inserts a batch, logging each shard's group to its WAL before
    /// applying it; groups for different shards proceed in parallel.
    ///
    /// # Panics
    /// Panics if any id is already present or duplicated in the batch
    /// (checked per shard before that shard's log is written).
    pub fn insert_batch(&self, docs: &[(u64, Vec<u8>)]) -> Result<(), PersistError> {
        let mut groups: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); self.store.num_shards()];
        for (id, bytes) in docs {
            groups[self.store.shard_of(*id)].push((*id, bytes.clone()));
        }
        self.for_each_group(groups, |shard, group| {
            let mut wal = self.wal(shard);
            // Duplicates must be rejected before the log records them —
            // a record that cannot replay would poison recovery.
            let mut seen = std::collections::HashSet::with_capacity(group.len());
            for (id, _) in &group {
                assert!(seen.insert(*id), "document {id} duplicated in batch");
                assert!(!self.store.contains(*id), "document {id} already present");
            }
            let seq = self.next_seq();
            let record = WalRecord::InsertBatch(group);
            wal.append(seq, &record)?;
            let WalRecord::InsertBatch(docs) = &record else {
                unreachable!("just constructed");
            };
            for (id, bytes) in docs {
                self.store.insert(*id, bytes)?;
            }
            Ok(0usize)
        })
        .map(|_| ())
    }

    /// Deletes one document (logged, then applied); returns its bytes.
    pub fn delete(&self, doc_id: u64) -> Result<Option<Vec<u8>>, PersistError> {
        let shard = self.store.shard_of(doc_id);
        let mut wal = self.wal(shard);
        if !self.store.contains(doc_id) {
            return Ok(None);
        }
        let seq = self.next_seq();
        wal.append(seq, &WalRecord::DeleteBatch(vec![doc_id]))?;
        Ok(self.store.delete(doc_id)?)
    }

    /// Deletes a batch (logged per shard, then applied); returns how
    /// many ids were present and removed.
    pub fn delete_batch(&self, ids: &[u64]) -> Result<usize, PersistError> {
        let mut groups: Vec<Vec<u64>> = vec![Vec::new(); self.store.num_shards()];
        for &id in ids {
            groups[self.store.shard_of(id)].push(id);
        }
        self.for_each_group(groups, |shard, group| {
            let mut wal = self.wal(shard);
            let present: Vec<u64> = group
                .iter()
                .copied()
                .filter(|&id| self.store.contains(id))
                .collect();
            if present.is_empty() {
                return Ok(0);
            }
            let seq = self.next_seq();
            wal.append(seq, &WalRecord::DeleteBatch(present.clone()))?;
            let mut removed = 0usize;
            for id in present {
                if self.store.delete(id)?.is_some() {
                    removed += 1;
                }
            }
            Ok(removed)
        })
    }

    /// Bulk-loads a document stream through the static-construction fast
    /// path (see [`ShardedStore::ingest`]), durably: each chunk is
    /// appended to its shard's write-ahead log as **one coalesced
    /// `IngestBatch` record** — one frame header, one `write_all`, and
    /// at most one policy-charged fsync per chunk, instead of per
    /// document or per small batch — and then built straight into a
    /// static bulk level on that shard. Replay after a crash routes the
    /// logged chunks back through the same bulk-build path. Memory stays
    /// bounded by one chunk of raw documents per shard.
    ///
    /// Pair with [`SyncPolicy::Batched`](crate::SyncPolicy) to also cap
    /// WAL-staleness during long loads without paying one fsync per
    /// chunk.
    ///
    /// # Errors
    /// Returns the first WAL or shard error; chunks already logged and
    /// applied stay applied (and recovery replays them).
    ///
    /// # Panics
    /// Panics if a document id is already present or duplicated in the
    /// stream — checked per chunk *before* that chunk's log record is
    /// written, so an unreplayable record never reaches the WAL.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::{FmConfig, RebuildMode};
    /// use dyndex_persist::{DurableStore, RestoreOptions};
    /// use dyndex_store::{MaintenancePolicy, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let dir = std::env::temp_dir().join(format!("dyndex-ingest-doc-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let options = StoreOptions {
    ///     num_shards: 2,
    ///     mode: RebuildMode::Inline,
    ///     maintenance: MaintenancePolicy::Manual,
    ///     ..StoreOptions::default()
    /// };
    /// let store: DurableStore<FmIndexCompressed> =
    ///     DurableStore::create(&dir, FmConfig { sample_rate: 8 }, options).unwrap();
    /// let corpus = (0..50u64).map(|id| (id, format!("durable bulk doc {id}").into_bytes()));
    /// let stats = store.ingest(corpus).unwrap();
    /// assert_eq!(stats.docs, 50);
    /// drop(store); // simulate a restart: the chunks live only in the WAL
    ///
    /// let restore_opts = RestoreOptions {
    ///     mode: RebuildMode::Inline,
    ///     maintenance: MaintenancePolicy::Manual,
    ///     ..RestoreOptions::default()
    /// };
    /// let store: DurableStore<FmIndexCompressed> = DurableStore::open(&dir, restore_opts).unwrap();
    /// assert_eq!(store.num_docs(), 50);
    /// assert_eq!(store.count(b"bulk doc 49"), 1);
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn ingest<D>(&self, docs: D) -> Result<IngestStats, PersistError>
    where
        D: IntoIterator<Item = (u64, Vec<u8>)>,
    {
        self.ingest_with_chunk_symbols(docs, dyndex_core::bulk::DEFAULT_CHUNK_SYMBOLS)
    }

    /// [`DurableStore::ingest`] with an explicit chunk bound (bytes of
    /// routed documents per WAL record and bulk level, per shard; values
    /// below 1 are clamped to 1).
    pub fn ingest_with_chunk_symbols<D>(
        &self,
        docs: D,
        chunk_symbols: usize,
    ) -> Result<IngestStats, PersistError>
    where
        D: IntoIterator<Item = (u64, Vec<u8>)>,
    {
        let started = Instant::now();
        let chunk_symbols = chunk_symbols.max(1);
        let num_shards = self.store.num_shards();
        let mut buffers: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); num_shards];
        let mut buffered_bytes = vec![0usize; num_shards];
        let mut stats = IngestStats {
            docs: 0,
            bytes: 0,
            levels: 0,
            elapsed: Duration::ZERO,
        };
        for (id, bytes) in docs {
            let shard = self.store.shard_of(id);
            buffered_bytes[shard] += bytes.len();
            buffers[shard].push((id, bytes));
            if buffered_bytes[shard] >= chunk_symbols {
                let chunk = std::mem::take(&mut buffers[shard]);
                stats.bytes += std::mem::take(&mut buffered_bytes[shard]) as u64;
                stats.docs += chunk.len() as u64;
                stats.levels += 1;
                self.ingest_chunk(shard, chunk)?;
            }
        }
        for shard in 0..num_shards {
            if !buffers[shard].is_empty() {
                let chunk = std::mem::take(&mut buffers[shard]);
                stats.bytes += buffered_bytes[shard] as u64;
                stats.docs += chunk.len() as u64;
                stats.levels += 1;
                self.ingest_chunk(shard, chunk)?;
            }
        }
        stats.elapsed = started.elapsed();
        Ok(stats)
    }

    /// Logs one routed chunk as a single coalesced `IngestBatch` record,
    /// then builds it into a bulk level on its shard. The shard's WAL
    /// lock is held across both, so log order matches apply order and a
    /// concurrent snapshot cuts between chunks, never through one.
    fn ingest_chunk(&self, shard: usize, chunk: Vec<(u64, Vec<u8>)>) -> Result<(), PersistError> {
        let mut wal = self.wal(shard);
        let mut seen = std::collections::HashSet::with_capacity(chunk.len());
        for (id, _) in &chunk {
            assert!(seen.insert(*id), "document {id} duplicated in batch");
            assert!(!self.store.contains(*id), "document {id} already present");
        }
        let seq = self.next_seq();
        let record = WalRecord::IngestBatch(chunk);
        wal.append(seq, &record)?;
        let WalRecord::IngestBatch(chunk) = &record else {
            unreachable!("just constructed");
        };
        self.store.bulk_load_shard(shard, chunk)?;
        Ok(())
    }

    /// Runs `f` for every non-empty shard group on its own scoped
    /// thread, summing the results (the WAL mutex inside `f` serializes
    /// same-shard work; different shards proceed in parallel).
    fn for_each_group<T, F>(&self, groups: Vec<Vec<T>>, f: F) -> Result<usize, PersistError>
    where
        T: Send,
        F: Fn(usize, Vec<T>) -> Result<usize, PersistError> + Sync,
    {
        let results: Vec<Result<usize, PersistError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(shard, group)| {
                    let f = &f;
                    scope.spawn(move || f(shard, group))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("durable write thread panicked"))
                .collect()
        });
        let mut total = 0usize;
        for r in results {
            total += r?;
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Durability control
    // ------------------------------------------------------------------

    /// Commits a new snapshot generation covering everything applied so
    /// far (re-serializing only changed levels — see the snapshot module
    /// docs), then truncates the logs it covers. Uses the default
    /// [`SnapshotMode::Background`]: writers are held off via the WAL
    /// locks (which also makes the per-shard cut globally consistent),
    /// but readers keep querying throughout — serialization runs on the
    /// worker pool, interleaved with query service.
    pub fn snapshot(&self) -> Result<SnapshotStats, PersistError> {
        self.snapshot_with(SnapshotMode::default())
    }

    /// [`DurableStore::snapshot`] with an explicit [`SnapshotMode`]
    /// (`StopTheWorld` additionally blocks readers for the duration).
    pub fn snapshot_with(&self, mode: SnapshotMode) -> Result<SnapshotStats, PersistError> {
        let started = Instant::now();
        let mut wals: Vec<MutexGuard<'_, WalWriter>> =
            (0..self.wals.len()).map(|s| self.wal(s)).collect();
        let seq = self.seq.load(Ordering::SeqCst);
        let stats = write_snapshot(&self.store, &self.dir, seq, mode)?;
        for wal in wals.iter_mut() {
            wal.truncate()?;
        }
        self.snapshot_bytes
            .store(stats.bytes_on_disk, Ordering::Relaxed);
        self.store.record_snapshot_metrics(
            started.elapsed().as_nanos() as u64,
            stats.bytes_written,
            stats.bytes_reused,
        );
        Ok(stats)
    }

    /// fsyncs every log file (power-failure durability; plain appends
    /// already survive process crashes).
    pub fn sync_wal(&self) -> Result<(), PersistError> {
        for s in 0..self.wals.len() {
            self.wal(s).sync()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Delegated queries
    // ------------------------------------------------------------------

    /// See [`ShardedStore::count`].
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.store.count(pattern)
    }

    /// See [`ShardedStore::find`].
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        self.store.find(pattern)
    }

    /// See [`ShardedStore::find_limit`].
    pub fn find_limit(&self, pattern: &[u8], limit: usize) -> Vec<Occurrence> {
        self.store.find_limit(pattern, limit)
    }

    /// See [`ShardedStore::extract`].
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        self.store.extract(doc_id, offset, len)
    }

    /// See [`ShardedStore::contains`].
    pub fn contains(&self, doc_id: u64) -> bool {
        self.store.contains(doc_id)
    }

    /// See [`ShardedStore::num_docs`].
    pub fn num_docs(&self) -> usize {
        self.store.num_docs()
    }

    /// See [`ShardedStore::symbol_count`].
    pub fn symbol_count(&self) -> usize {
        self.store.symbol_count()
    }

    /// See [`ShardedStore::flush`].
    pub fn flush(&self) {
        self.store.flush();
    }

    /// Store census with [`StoreStats::snapshot_bytes`] filled in from
    /// the last committed snapshot and — when telemetry is enabled and
    /// fsyncs have been recorded — the WAL fsync p99.
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.store.stats();
        stats.snapshot_bytes = Some(self.snapshot_bytes.load(Ordering::Relaxed));
        if let Some(registry) = self.store.metrics() {
            stats.wal_fsync_p99 = registry
                .find_histogram("dyndex_wal_fsync_duration")
                .map(|h| h.snapshot())
                .filter(|s| s.count() > 0)
                .map(|s| Duration::from_nanos(s.percentile(0.99)));
        }
        stats
    }

    /// See [`ShardedStore::metrics`]. The registry also carries the WAL
    /// series (`dyndex_wal_append_duration`, `dyndex_wal_fsync_duration`)
    /// and the snapshot series this layer records.
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.store.metrics()
    }

    /// See [`ShardedStore::render_metrics`].
    pub fn render_metrics(&self) -> Option<String> {
        self.store.render_metrics()
    }

    /// See [`ShardedStore::recent_spans`].
    pub fn recent_spans(&self) -> Vec<QuerySpan> {
        self.store.recent_spans()
    }

    /// See [`ShardedStore::flight_spans`]. WAL appends and fsyncs show
    /// up here as `wal_append` / `wal_fsync` root spans.
    pub fn flight_spans(&self) -> Vec<dyndex_obs::Span> {
        self.store.flight_spans()
    }

    /// See [`ShardedStore::health`]. WAL I/O errors and slow fsyncs are
    /// folded into the report via the shared registry.
    pub fn health(&self) -> dyndex_obs::HealthReport {
        self.store.health()
    }
}

impl<I> Drop for DurableStore<I>
where
    I: StaticIndex + Sync + Persist,
    I::Config: Persist,
{
    /// Best-effort close of every shard's log: under group-commit or
    /// snapshot-paced fsync policies, acknowledged records may still sit
    /// in the page cache — a cleanly dropped store must not leave them
    /// exposed to the next power failure. Errors are swallowed (callers
    /// wanting to observe the final sync use
    /// [`DurableStore::sync_wal`] before dropping).
    fn drop(&mut self) {
        for wal in &mut self.wals {
            let writer = wal
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = writer.close();
        }
    }
}
