//! # dyndex-persist
//!
//! Durability for the `dyndex` sharded document store: binary
//! serialization of every static structure, crash-atomic snapshots, and
//! per-shard write-ahead logging.
//!
//! The Munro–Nekrich–Vitter construction keeps all static levels and
//! the dynamic buffer in RAM, so a process restart pays a full rebuild
//! of the entire collection — exactly the cost Transformation 2 exists
//! to amortize. This crate removes that cliff:
//!
//! * [`Persist`] — a zero-dependency binary codec (`write_to` /
//!   `read_from` over `std::io`) with versioned, checksummed framing,
//!   implemented bottom-up for the succinct structures (`BitVec`,
//!   rank/select, `WaveletMatrix`, int/Elias–Fano vectors), the text
//!   layer (`FmIndex` with its doc-id maps and SA samples), and the
//!   `Transform2Index` static levels. Acceleration state (rank
//!   directories, decode maps) is re-derived on load, so restore costs
//!   linear scans instead of suffix sorting.
//! * [`StorePersist`] — `snapshot(dir)` / `restore(dir, options)` on
//!   `ShardedStore`: one file per shard plus a manifest, written
//!   temp-then-rename with the manifest last, so a crash mid-snapshot
//!   leaves the previous consistent generation readable.
//! * [`DurableStore`] — a store wrapper that write-ahead-logs every
//!   insert/delete batch between snapshots; `open` restores the last
//!   snapshot and replays the logged tail through the normal
//!   dynamic-buffer path, recovering the exact pre-crash logical state.
//!
//! Restored stores answer `count` / `find` / `find_limit` / `extract`
//! byte-identically to the live store they were snapshotted from: every
//! structure keeps its position, and every enumeration order is
//! preserved.
//!
//! ```
//! use dyndex_core::{FmConfig, RebuildMode};
//! use dyndex_persist::{DurableStore, RestoreOptions};
//! use dyndex_store::{MaintenancePolicy, StoreOptions};
//! use dyndex_text::FmIndexCompressed;
//!
//! let dir = std::env::temp_dir().join(format!("dyndex-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let options = StoreOptions {
//!     num_shards: 2,
//!     mode: RebuildMode::Inline,
//!     maintenance: MaintenancePolicy::Manual,
//!     ..StoreOptions::default()
//! };
//! let store: DurableStore<FmIndexCompressed> =
//!     DurableStore::create(&dir, FmConfig { sample_rate: 8 }, options).unwrap();
//! store.insert(1, b"durable dynamic document store").unwrap();
//! store.snapshot().unwrap();
//! store.insert(2, b"this lives only in the write-ahead log").unwrap();
//! drop(store); // simulate a restart
//!
//! let restore_opts = RestoreOptions {
//!     mode: RebuildMode::Inline,
//!     maintenance: MaintenancePolicy::Manual,
//!     ..RestoreOptions::default()
//! };
//! let store: DurableStore<FmIndexCompressed> = DurableStore::open(&dir, restore_opts).unwrap();
//! assert_eq!(store.num_docs(), 2); // snapshot + replayed WAL tail
//! assert_eq!(store.count(b"durable"), 1);
//! assert_eq!(store.count(b"write-ahead"), 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod codec;
mod core_impls;
mod durable;
pub mod error;
mod snapshot;
mod succinct_impls;
mod text_impls;
mod wal;

pub use codec::Persist;
pub use durable::DurableStore;
pub use error::PersistError;
pub use snapshot::{
    read_manifest, LevelFileEntry, Manifest, RestoreOptions, ShardFileEntry, ShardManifest,
    SnapshotMode, SnapshotStats, StorePersist, MANIFEST_FILE, NO_WAL, ROUTE_SPLITMIX64,
};
pub use wal::{SyncPolicy, WalOptions};
