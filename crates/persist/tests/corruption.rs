//! Corruption and crash-atomicity: restore must fail with a *typed*
//! error — never a panic — on truncated or bit-flipped files, and a kill
//! between a new generation's shard writes and its manifest rename must
//! restore from the previous consistent snapshot.

use dyndex_core::{DynOptions, FmConfig, RebuildMode};
use dyndex_persist::{read_manifest, PersistError, RestoreOptions, StorePersist, MANIFEST_FILE};
use dyndex_store::{MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;
use std::path::{Path, PathBuf};

type Store = ShardedStore<FmIndexCompressed>;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "dyndex-persist-corrupt-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn opts() -> StoreOptions {
    StoreOptions {
        num_shards: 3,
        index: DynOptions {
            min_capacity: 32,
            tau: 4,
            ..DynOptions::default()
        },
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..StoreOptions::default()
    }
}

fn restore_opts() -> RestoreOptions {
    RestoreOptions {
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..RestoreOptions::default()
    }
}

/// A populated, snapshotted store in `dir`.
fn seeded_snapshot(dir: &Path) -> Store {
    let store = Store::new(FmConfig { sample_rate: 4 }, opts());
    for i in 0..80u64 {
        let doc = format!(
            "corruption workload doc {i} {}",
            "tail".repeat(i as usize % 3)
        );
        store.insert(i, doc.as_bytes()).unwrap();
    }
    store
        .delete_batch(&(0..80).filter(|i| i % 7 == 0).collect::<Vec<_>>())
        .unwrap();
    store.snapshot(dir).expect("snapshot");
    store
}

/// The first shard's first level content file (falling back to its meta
/// file for level-less shards) — the corruption targets below.
fn first_shard_file(dir: &Path) -> PathBuf {
    let m = read_manifest(dir).expect("manifest");
    let shard = &m.shards[0];
    match shard.levels.first() {
        Some(level) => dir.join(&level.entry.file),
        None => dir.join(&shard.meta.file),
    }
}

#[test]
fn truncated_shard_file_fails_cleanly() {
    let dir = TempDir::new("truncate");
    seeded_snapshot(&dir.0);
    let shard = first_shard_file(&dir.0);
    let bytes = std::fs::read(&shard).unwrap();
    for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&shard, &bytes[..cut]).unwrap();
        match Store::restore(&dir.0, restore_opts()) {
            Err(PersistError::Corrupt { .. }) | Err(PersistError::Io(_)) => {}
            Err(e) => panic!("unexpected error kind at cut {cut}: {e}"),
            Ok(_) => panic!("restore must fail on truncated shard (cut {cut})"),
        }
    }
}

#[test]
fn flipped_bit_fails_cleanly() {
    let dir = TempDir::new("bitflip");
    seeded_snapshot(&dir.0);
    let shard = first_shard_file(&dir.0);
    let clean = std::fs::read(&shard).unwrap();
    // Flip a byte in several regions: header, early payload, late payload.
    for pos in [5usize, 40, clean.len() / 2, clean.len() - 2] {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x20;
        std::fs::write(&shard, &bytes).unwrap();
        let r = Store::restore(&dir.0, restore_opts());
        assert!(r.is_err(), "flipped byte at {pos} must fail restore");
    }
    // Restoring the clean bytes works again.
    std::fs::write(&shard, &clean).unwrap();
    assert!(Store::restore(&dir.0, restore_opts()).is_ok());
}

#[test]
fn corrupt_manifest_fails_cleanly() {
    let dir = TempDir::new("manifest");
    seeded_snapshot(&dir.0);
    let manifest = dir.0.join(MANIFEST_FILE);
    let clean = std::fs::read(&manifest).unwrap();
    let mut bytes = clean.clone();
    bytes[clean.len() / 2] ^= 0xFF;
    std::fs::write(&manifest, &bytes).unwrap();
    assert!(matches!(
        Store::restore(&dir.0, restore_opts()),
        Err(PersistError::Corrupt { .. })
    ));
    std::fs::remove_file(&manifest).unwrap();
    assert!(matches!(
        Store::restore(&dir.0, restore_opts()),
        Err(PersistError::Io(_))
    ));
}

/// A plain `StorePersist::snapshot` writes a no-WAL-watermark manifest;
/// if such a manifest ends up in a directory whose logs still hold
/// records, whether those records pre- or post-date the snapshot is
/// unknowable — `DurableStore::open` must refuse rather than guess.
#[test]
fn open_refuses_no_wal_manifest_with_wal_records() {
    use dyndex_persist::DurableStore;
    let dir = TempDir::new("nowal");
    let durable: DurableStore<FmIndexCompressed> =
        DurableStore::create(&dir.0, FmConfig { sample_rate: 4 }, opts()).expect("create");
    durable
        .insert(1, b"logged but never snapshotted")
        .expect("insert");
    // Overwrite the manifest with a WAL-less snapshot of the same state.
    durable.store().snapshot(&dir.0).expect("plain snapshot");
    drop(durable);
    match DurableStore::<FmIndexCompressed>::open(&dir.0, restore_opts()) {
        Err(PersistError::Manifest { context }) => {
            assert!(context.contains("watermark"), "got: {context}");
        }
        Err(e) => panic!("wrong error kind: {e}"),
        Ok(_) => panic!("open must refuse a NO_WAL manifest with live WAL records"),
    }
}

#[test]
fn wrong_index_type_is_rejected() {
    let dir = TempDir::new("wrongtype");
    seeded_snapshot(&dir.0);
    let r = ShardedStore::<dyndex_text::FmIndexPlain>::restore(&dir.0, restore_opts());
    assert!(
        matches!(r, Err(PersistError::WrongType { .. })),
        "a compressed-index snapshot must not restore as a plain index"
    );
}

/// The kill-between-rename scenario: a crash after writing the next
/// generation's shard files but *before* the manifest rename leaves the
/// directory with extra (even garbage) files — restore must ignore them
/// and come back from the last committed generation.
#[test]
fn kill_between_rename_restores_previous_snapshot() {
    let dir = TempDir::new("killrename");
    let store = seeded_snapshot(&dir.0);
    store.flush();
    let generation = read_manifest(&dir.0).expect("manifest").generation;

    // Simulate the torn next generation: plausible-looking shard files
    // (garbage and truncated-copy variants) plus a leftover atomic-write
    // temp file, with the old manifest still in place.
    let next = generation + 1;
    std::fs::write(
        dir.0.join(format!("shard-g{next:08}-0000.bin")),
        b"garbage from a crashed snapshot",
    )
    .unwrap();
    let real = std::fs::read(first_shard_file(&dir.0)).unwrap();
    std::fs::write(
        dir.0.join(format!("shard-g{next:08}-0001.bin")),
        &real[..real.len() / 3],
    )
    .unwrap();
    std::fs::write(dir.0.join(".MANIFEST.tmp.99999"), b"torn manifest").unwrap();

    let restored = Store::restore(&dir.0, restore_opts()).expect("previous generation restores");
    assert_eq!(restored.num_docs(), store.num_docs());
    for p in [b"corruption".as_slice(), b"doc 7", b"tailtail"] {
        assert_eq!(restored.count(p), store.count(p));
        assert_eq!(restored.find(p), store.find(p));
    }

    // The next successful snapshot garbage-collects the torn files.
    store.snapshot(&dir.0).expect("snapshot after crash");
    let stale: Vec<String> = std::fs::read_dir(&dir.0)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.starts_with(&format!("shard-g{generation:08}-")) || n.contains(".tmp."))
        .collect();
    assert!(stale.is_empty(), "stale files must be collected: {stale:?}");
}

/// Crash atomicity of *delta* snapshots: generation 2 reuses most of
/// generation 1's level files; a kill between generation 3's level-file
/// writes and its manifest commit must restore generation 2 — including
/// every level file it shares with generation 1 — exactly.
#[test]
fn kill_between_level_writes_restores_previous_generation_with_reused_files() {
    let dir = TempDir::new("killdelta");
    let store = seeded_snapshot(&dir.0); // generation 1: full write
    store.flush();

    // Mutate a minority of shards, then commit a delta generation 2.
    let doomed: Vec<u64> = (1..80).filter(|&id| store.shard_of(id) == 0).collect();
    store.delete_batch(&doomed).unwrap();
    store.flush();
    let second = store.snapshot(&dir.0).expect("delta snapshot");
    assert!(
        second.levels_reused > 0,
        "scenario requires cross-generation file sharing: {second}"
    );
    let manifest = read_manifest(&dir.0).expect("manifest");
    assert_eq!(manifest.generation, 2);
    // Generation 2 must reference files written by generation 1.
    let gen1_refs: Vec<String> = manifest
        .shards
        .iter()
        .flat_map(|s| s.levels.iter())
        .filter(|l| l.entry.file.starts_with("level-g00000001-"))
        .map(|l| l.entry.file.clone())
        .collect();
    assert!(!gen1_refs.is_empty(), "gen 2 must share gen 1 level files");

    // Simulate a crash mid-generation-3: some level files and a meta
    // file landed (garbage and truncated variants), plus a torn
    // atomic-write temp — but the manifest rename never happened.
    std::fs::write(
        dir.0.join("level-g00000003-0000-e00000000000000ff.bin"),
        b"garbage level from a crashed snapshot",
    )
    .unwrap();
    let real = std::fs::read(first_shard_file(&dir.0)).unwrap();
    std::fs::write(
        dir.0.join("level-g00000003-0001-e0000000000000100.bin"),
        &real[..real.len() / 3],
    )
    .unwrap();
    std::fs::write(dir.0.join("shard-g00000003-0000.bin"), b"torn meta").unwrap();
    std::fs::write(dir.0.join(".MANIFEST.tmp.424242"), b"torn manifest").unwrap();

    // Restore comes back from generation 2 with the reused files intact.
    let restored = Store::restore(&dir.0, restore_opts()).expect("generation 2 restores");
    assert_eq!(restored.num_docs(), store.num_docs());
    for p in [b"corruption".as_slice(), b"doc 7", b"tailtail"] {
        assert_eq!(restored.count(p), store.count(p));
        assert_eq!(restored.find(p), store.find(p));
    }

    // The next committed snapshot collects the torn generation-3 files
    // but keeps every file the new manifest references — including the
    // generation-1 level files still shared.
    let third = store.snapshot(&dir.0).expect("snapshot after crash");
    assert!(third.levels_reused > 0);
    let manifest = read_manifest(&dir.0).expect("manifest");
    let referenced: std::collections::HashSet<String> = manifest
        .shards
        .iter()
        .flat_map(|s| {
            std::iter::once(s.meta.file.clone())
                .chain(s.levels.iter().map(|l| l.entry.file.clone()))
        })
        .collect();
    for file in &referenced {
        assert!(
            dir.0.join(file).is_file(),
            "referenced file {file} must survive GC"
        );
    }
    let stray: Vec<String> = std::fs::read_dir(&dir.0)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| {
            (n.starts_with("shard-g") || n.starts_with("level-g") || n.contains(".tmp."))
                && !referenced.contains(n)
        })
        .collect();
    assert!(
        stray.is_empty(),
        "unreferenced files must be GC'd: {stray:?}"
    );
}

/// A snapshot written by a *different* store into the same directory
/// must not reuse the previous store's level files (epochs are
/// per-store counters — equal epochs from different stores are
/// unrelated bytes): it falls back to a full write, and both before
/// and after remain restorable.
#[test]
fn different_store_never_reuses_foreign_level_files() {
    let dir = TempDir::new("foreign");
    seeded_snapshot(&dir.0);

    // A different store with different content snapshots into the same
    // directory.
    let other = Store::new(FmConfig { sample_rate: 4 }, opts());
    for i in 0..60u64 {
        other
            .insert(i, format!("other corpus item {i}").as_bytes())
            .unwrap();
    }
    other.flush();
    let stats = other.snapshot(&dir.0).expect("foreign snapshot");
    assert_eq!(
        stats.levels_reused, 0,
        "foreign epochs must never match: {stats}"
    );
    assert_eq!(stats.bytes_reused, 0);

    let restored = Store::restore(&dir.0, restore_opts()).expect("restore");
    assert_eq!(restored.num_docs(), other.num_docs());
    assert_eq!(
        restored.count(b"other corpus"),
        other.count(b"other corpus")
    );
}

/// Fork detection: a restore *clone* of a snapshot diverges from the
/// original store, and both keep snapshotting into the same directory.
/// Each commit mints a fresh id that the writer's state then descends
/// from; whichever store is not on the directory's committed lineage
/// must take a full write — its epochs and the other store's level
/// files describe different bytes, and reusing them would commit a
/// silently corrupt snapshot.
#[test]
fn diverged_restore_never_reuses_stale_level_files() {
    let dir = TempDir::new("fork");
    let store = seeded_snapshot(&dir.0); // generation 1
    store.flush();
    let clone = Store::restore(&dir.0, restore_opts()).expect("restore clone");

    // The original diverges and commits generation 2 (on-lineage: delta
    // reuse is still correct here).
    let s_doomed: Vec<u64> = (1..80).filter(|&id| store.shard_of(id) == 1).collect();
    store.delete_batch(&s_doomed).unwrap();
    store.flush();
    let second = store.snapshot(&dir.0).expect("original's delta snapshot");
    assert!(
        second.levels_reused > 0,
        "on-lineage writer reuses: {second}"
    );

    // The clone diverges *differently* and snapshots next: it descends
    // from generation 1, but the directory is now at generation 2 — the
    // fork must force a full write.
    let c_doomed: Vec<u64> = (1..80).filter(|&id| clone.shard_of(id) == 2).collect();
    clone.delete_batch(&c_doomed).unwrap();
    clone.flush();
    let forked = clone.snapshot(&dir.0).expect("clone's snapshot");
    assert_eq!(
        forked.levels_reused, 0,
        "diverged clone must never reuse the original's files: {forked}"
    );
    assert_eq!(forked.bytes_reused, 0);

    // And the committed snapshot is the clone's exact state.
    let restored = Store::restore(&dir.0, restore_opts()).expect("restore");
    assert_eq!(restored.num_docs(), clone.num_docs());
    for p in [b"corruption".as_slice(), b"doc 7", b"tailtail"] {
        assert_eq!(restored.count(p), clone.count(p));
        assert_eq!(restored.find(p), clone.find(p));
    }
}

/// Regression for the buffered-tail shutdown bug: under group-commit
/// (`SyncPolicy::EveryN`) or snapshot-paced (`SyncPolicy::OnSnapshot`)
/// policies, records appended since the last fsync sat only in the page
/// cache when a `DurableStore` was dropped — `WalWriter` had no close
/// path. Dropping the store must now sync every log's tail (via
/// `WalWriter::close`, called best-effort from `DurableStore`'s `Drop`),
/// so a clean drop-then-reopen recovers every acknowledged mutation with
/// no fsync left pending.
#[test]
fn dropped_durable_store_syncs_wal_tail_on_close() {
    use dyndex_persist::{DurableStore, SyncPolicy, WalOptions};

    for (policy, tag) in [
        (SyncPolicy::EveryN(64), "every-n"),
        (SyncPolicy::OnSnapshot, "on-snapshot"),
    ] {
        let dir = TempDir::new(&format!("drop-sync-{tag}"));
        {
            let durable: DurableStore<FmIndexCompressed> = DurableStore::create_with_wal(
                &dir.0,
                FmConfig { sample_rate: 4 },
                opts(),
                WalOptions { sync: policy },
            )
            .expect("create");
            // Far fewer than 64 records: under EveryN the whole tail is
            // un-fsynced, under OnSnapshot everything since create is.
            for i in 0..10u64 {
                durable
                    .insert(i, format!("tail record {i} ({tag})").as_bytes())
                    .expect("insert");
            }
            durable.delete(3).expect("delete");
            // Dropped here without an explicit sync_wal()/snapshot():
            // Drop must close (sync) each shard's log.
        }
        let reopened: DurableStore<FmIndexCompressed> =
            DurableStore::open(&dir.0, restore_opts()).expect("reopen after clean drop");
        assert_eq!(reopened.num_docs(), 9, "{tag}: all acknowledged mutations");
        assert!(!reopened.contains(3), "{tag}: delete recovered");
        assert_eq!(reopened.count(b"tail record"), 9);
        // The reopened store keeps accepting and logging mutations.
        reopened
            .insert(100, b"tail record after reopen")
            .expect("insert after reopen");
        assert_eq!(reopened.count(b"tail record"), 10);
    }
}
