//! Property tests: snapshot→restore must be a lossless, order-preserving
//! round trip — the restored store answers `count` / `find` /
//! `find_limit` / `extract` byte-identically to the live store it was
//! taken from, for any shard count, document mix, and delete
//! interleaving; and a `DurableStore` reopened after "losing" its
//! process recovers the exact logical state from snapshot + WAL tail.

use dyndex_core::{DynOptions, FmConfig, RebuildMode};
use dyndex_persist::{DurableStore, RestoreOptions, StorePersist};
use dyndex_store::{MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

type Store = ShardedStore<FmIndexCompressed>;
type Durable = DurableStore<FmIndexCompressed>;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let p =
            std::env::temp_dir().join(format!("dyndex-persist-prop-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dyn_opts() -> DynOptions {
    DynOptions {
        min_capacity: 32,
        tau: 4,
        ..DynOptions::default()
    }
}

fn fm() -> FmConfig {
    FmConfig { sample_rate: 4 }
}

fn store_opts(num_shards: usize) -> StoreOptions {
    StoreOptions {
        num_shards,
        index: dyn_opts(),
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..StoreOptions::default()
    }
}

fn restore_opts() -> RestoreOptions {
    RestoreOptions {
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..RestoreOptions::default()
    }
}

fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 0..48)
}

fn pattern_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 1..5),
        1..6,
    )
}

/// Byte-identical comparison of every query surface.
fn assert_identical(
    live: &Store,
    restored: &Store,
    patterns: &[Vec<u8>],
    ids: impl Iterator<Item = u64>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(restored.num_docs(), live.num_docs());
    prop_assert_eq!(restored.symbol_count(), live.symbol_count());
    for p in patterns {
        prop_assert_eq!(restored.count(p), live.count(p));
        prop_assert_eq!(restored.find(p), live.find(p));
        for limit in [0usize, 1, 3, 1000] {
            prop_assert_eq!(restored.find_limit(p, limit), live.find_limit(p, limit));
        }
    }
    for id in ids {
        prop_assert_eq!(restored.contains(id), live.contains(id));
        prop_assert_eq!(restored.extract(id, 0, 64), live.extract(id, 0, 64));
        prop_assert_eq!(restored.extract(id, 2, 5), live.extract(id, 2, 5));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot → restore round trip on a plain sharded store.
    #[test]
    fn snapshot_restore_is_byte_identical(
        num_shards in 1usize..=5,
        docs in proptest::collection::vec(doc_strategy(), 1..24),
        patterns in pattern_strategy(),
        delete_every in 2u64..5,
    ) {
        let store = Store::new(fm(), store_opts(num_shards));
        for (i, doc) in docs.iter().enumerate() {
            store.insert(i as u64, doc).unwrap();
        }
        let doomed: Vec<u64> = (0..docs.len() as u64)
            .filter(|id| id % delete_every == 0)
            .collect();
        store.delete_batch(&doomed).unwrap();
        store.flush();

        let dir = TempDir::new();
        let stats = store.snapshot(&dir.0).expect("snapshot");
        prop_assert_eq!(stats.shards, num_shards);
        prop_assert!(stats.bytes_on_disk > 0);
        let restored = Store::restore(&dir.0, restore_opts()).expect("restore");
        prop_assert_eq!(restored.num_shards(), num_shards);
        assert_identical(&store, &restored, &patterns, 0..docs.len() as u64)?;
    }

    /// Snapshotting twice reuses the directory (generation bump) and the
    /// second snapshot still restores exactly.
    #[test]
    fn regenerated_snapshot_restores_latest_state(
        docs in proptest::collection::vec(doc_strategy(), 2..16),
        patterns in pattern_strategy(),
    ) {
        let store = Store::new(fm(), store_opts(2));
        let dir = TempDir::new();
        let half = docs.len() / 2;
        for (i, doc) in docs[..half].iter().enumerate() {
            store.insert(i as u64, doc).unwrap();
        }
        let s1 = store.snapshot(&dir.0).expect("snapshot 1");
        for (i, doc) in docs[half..].iter().enumerate() {
            store.insert((half + i) as u64, doc).unwrap();
        }
        let s2 = store.snapshot(&dir.0).expect("snapshot 2");
        prop_assert!(s2.generation > s1.generation);
        store.flush();
        let restored = Store::restore(&dir.0, restore_opts()).expect("restore");
        assert_identical(&store, &restored, &patterns, 0..docs.len() as u64)?;
    }

    /// A `DurableStore` killed after a mid-workload snapshot (leaving a
    /// WAL tail of inserts *and* deletes) reopens to the exact state.
    #[test]
    fn durable_store_recovers_wal_tail(
        num_shards in 1usize..=4,
        docs in proptest::collection::vec(doc_strategy(), 2..20),
        patterns in pattern_strategy(),
        snapshot_at in 1usize..10,
        delete_every in 2u64..4,
    ) {
        let dir = TempDir::new();
        let live = Durable::create(&dir.0, fm(), store_opts(num_shards)).expect("create");
        let cut = snapshot_at.min(docs.len());
        let before: Vec<(u64, Vec<u8>)> = docs[..cut]
            .iter()
            .enumerate()
            .map(|(i, d)| (i as u64, d.clone()))
            .collect();
        live.insert_batch(&before).expect("insert before snapshot");
        live.snapshot().expect("mid-workload snapshot");
        // Tail: more inserts plus deletes, logged but never snapshotted.
        let after: Vec<(u64, Vec<u8>)> = docs[cut..]
            .iter()
            .enumerate()
            .map(|(i, d)| ((cut + i) as u64, d.clone()))
            .collect();
        live.insert_batch(&after).expect("insert after snapshot");
        let doomed: Vec<u64> = (0..docs.len() as u64)
            .filter(|id| id % delete_every == 1)
            .collect();
        live.delete_batch(&doomed).expect("delete after snapshot");
        live.flush();

        // Crash-recover: reopen purely from disk (snapshot + WAL tail,
        // never snapshotted) and compare against the never-crashed store.
        let live_store = live.store();
        let reopened = Durable::open(&dir.0, restore_opts()).expect("open");
        assert_identical(live_store, reopened.store(), &patterns, 0..docs.len() as u64)?;
        prop_assert!(reopened.stats().snapshot_bytes.is_some());
    }

    /// Interleaved insert/delete/snapshot/restore cycles — the store
    /// that continues into each next cycle is the *restored* one, so
    /// delta reuse, epoch-counter resumption, and cross-generation file
    /// sharing are all on the path — and every cycle's restored store
    /// must stay byte-identical to an unsharded `Transform2Index`
    /// driven through the identical op sequence.
    #[test]
    fn interleaved_snapshot_cycles_match_unsharded(
        num_shards in 1usize..=4,
        cycles in proptest::collection::vec(
            (proptest::collection::vec(doc_strategy(), 1..8), 2u64..5),
            1..4,
        ),
        patterns in pattern_strategy(),
    ) {
        use dyndex_core::Transform2Index;
        let dir = TempDir::new();
        let mut store = Store::new(fm(), store_opts(num_shards));
        let mut reference: Transform2Index<FmIndexCompressed> =
            Transform2Index::new(fm(), dyn_opts(), RebuildMode::Inline);
        let mut next_id = 0u64;
        for (docs, delete_every) in cycles {
            for doc in &docs {
                store.insert(next_id, doc).unwrap();
                reference.insert(next_id, doc);
                next_id += 1;
            }
            let doomed: Vec<u64> = (0..next_id)
                .filter(|&id| id % delete_every == 0 && store.contains(id))
                .collect();
            store.delete_batch(&doomed).unwrap();
            for id in &doomed {
                reference.delete(*id);
            }
            store.flush();
            reference.finish_background_work();

            store.snapshot(&dir.0).expect("snapshot");
            let restored = Store::restore(&dir.0, restore_opts()).expect("restore");
            // Byte-identical to the live sharded store it snapshotted…
            assert_identical(&store, &restored, &patterns, 0..next_id)?;
            // …and answer-identical to the unsharded reference.
            for p in &patterns {
                prop_assert_eq!(restored.count(p), reference.count(p));
                let mut single = reference.find(p);
                single.sort();
                prop_assert_eq!(restored.find(p), single);
            }
            for id in 0..next_id {
                prop_assert_eq!(restored.contains(id), reference.contains(id));
                prop_assert_eq!(restored.extract(id, 0, 64), reference.extract(id, 0, 64));
            }
            store = restored;
        }
    }
}
