//! End-to-end integration tests spanning every crate: long mixed
//! operation streams, all transformations and baselines against the
//! brute-force reference, background jobs, and space sanity.

use dyndex::baseline::{DynFmBaseline, RebuildAllIndex};
use dyndex::core::transform3::transform3_options;
use dyndex::prelude::*;

/// Deterministic document generator (repetitive enough to stress suffix
/// structures, varied enough to exercise the alphabet).
fn make_doc(seed: u64, step: u64) -> Vec<u8> {
    let mut state = seed ^ step.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let len = (next() % 120) as usize;
    let vocab: [&[u8]; 6] = [b"data", b"base", b"index", b"query", b" ", b"dyn"];
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(vocab[(next() % 6) as usize]);
    }
    out.truncate(len);
    out
}

const PATTERNS: &[&[u8]] = &[b"data", b"index", b"dyn", b"base", b"ata", b"xq", b"query "];

struct Stream {
    state: u64,
    live: Vec<u64>,
    next_id: u64,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Stream {
            state: seed,
            live: Vec::new(),
            next_id: 0,
        }
    }
    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
    /// Returns the next operation: Some((id, doc)) = insert, None+id = delete.
    fn op(&mut self) -> Result<(u64, Vec<u8>), u64> {
        let r = self.next();
        if !r.is_multiple_of(3) || self.live.is_empty() {
            self.next_id += 1;
            let id = self.next_id;
            self.live.push(id);
            Ok((id, make_doc(0xABCDEF, r)))
        } else {
            let i = (r as usize / 3) % self.live.len();
            Err(self.live.swap_remove(i))
        }
    }
}

fn churn_test<T>(
    idx: &mut T,
    steps: usize,
    check_every: usize,
    ins: fn(&mut T, u64, &[u8]),
    del: fn(&mut T, u64) -> Option<Vec<u8>>,
    find: fn(&T, &[u8]) -> Vec<Occurrence>,
    count: fn(&T, &[u8]) -> usize,
) {
    let mut naive = NaiveIndex::new();
    let mut stream = Stream::new(0x1234_5678_DEAD_BEEF);
    for step in 0..steps {
        match stream.op() {
            Ok((id, doc)) => {
                ins(idx, id, &doc);
                naive.insert(id, &doc);
            }
            Err(id) => {
                assert_eq!(
                    del(idx, id),
                    naive.delete(id),
                    "delete mismatch at step {step}"
                );
            }
        }
        if step % check_every == 0 || step + 1 == steps {
            for &p in PATTERNS {
                let mut got = find(idx, p);
                got.sort();
                assert_eq!(
                    got,
                    naive.find(p),
                    "find({:?}) at step {step}",
                    String::from_utf8_lossy(p)
                );
                assert_eq!(count(idx, p), naive.count(p), "count at step {step}");
            }
        }
    }
}

/// Heavyweight soak stream, ~10x the default churn length. Ignored by
/// default so tier-1 (`cargo test -q`) stays fast; run explicitly with
/// `cargo test --release -- --ignored` before performance PRs.
#[test]
#[ignore = "soak test: run with --ignored (slow)"]
fn transform1_extended_soak() {
    let mut idx: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 4 }, DynOptions::default());
    churn_test(
        &mut idx,
        6_000,
        211,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
    idx.check_invariants();
}

/// Heavyweight worst-case-variant soak with background rebuilds. Ignored
/// by default; see `transform1_extended_soak`.
#[test]
#[ignore = "soak test: run with --ignored (slow)"]
fn transform2_background_extended_soak() {
    let mut idx: Transform2Index<FmIndexCompressed> = Transform2Index::new(
        FmConfig { sample_rate: 4 },
        DynOptions::default(),
        RebuildMode::Background,
    );
    churn_test(
        &mut idx,
        4_000,
        197,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
    idx.finish_background_work();
    idx.check_invariants();
}

#[test]
fn transform1_long_churn() {
    let mut idx: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 4 }, DynOptions::default());
    churn_test(
        &mut idx,
        600,
        47,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
    idx.check_invariants();
    assert!(idx.work().rebuilds > 0);
}

#[test]
fn transform2_background_long_churn() {
    let mut idx: Transform2Index<FmIndexCompressed> = Transform2Index::new(
        FmConfig { sample_rate: 4 },
        DynOptions::default(),
        RebuildMode::Background,
    );
    churn_test(
        &mut idx,
        400,
        41,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
    idx.finish_background_work();
    idx.check_invariants();
}

#[test]
fn transform2_with_sa_index_long_churn() {
    // Table 3 configuration: the fast O(n log σ)-bit static index.
    let mut idx: Transform2Index<SaIndex> =
        Transform2Index::new((), DynOptions::default(), RebuildMode::Inline);
    churn_test(
        &mut idx,
        400,
        43,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
    idx.finish_background_work();
    idx.check_invariants();
}

#[test]
fn transform3_long_churn() {
    let mut idx: Transform3Index<FmIndexCompressed> = new_transform3(
        FmConfig { sample_rate: 4 },
        transform3_options(DynOptions::default()),
    );
    churn_test(
        &mut idx,
        500,
        53,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
    idx.check_invariants();
}

#[test]
fn baseline_dyn_fm_agrees_on_counts() {
    let mut idx = DynFmBaseline::new();
    let mut naive = NaiveIndex::new();
    let mut stream = Stream::new(0xFACE_FEED);
    for step in 0..250 {
        match stream.op() {
            Ok((id, doc)) => {
                idx.insert(id, &doc);
                naive.insert(id, &doc);
            }
            Err(id) => {
                let want = naive.delete(id).map(|d| d.len());
                assert_eq!(idx.delete(id), want, "step {step}");
            }
        }
        if step % 31 == 0 {
            for &p in PATTERNS {
                assert_eq!(idx.count(p), naive.count(p), "step {step}");
            }
        }
    }
}

#[test]
fn rebuild_all_baseline_agrees() {
    let mut idx: RebuildAllIndex<FmIndexCompressed> =
        RebuildAllIndex::new(FmConfig { sample_rate: 4 }, true);
    churn_test(
        &mut idx,
        60, // O(n) per update — keep short
        13,
        |i, id, d| i.insert(id, d),
        |i, id| i.delete(id),
        |i, p| i.find(p),
        |i, p| i.count(p),
    );
}

#[test]
fn all_indexes_agree_with_each_other() {
    // One workload, four engines, one truth.
    let mut t1: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 4 }, DynOptions::default());
    let mut t2: Transform2Index<FmIndexCompressed> = Transform2Index::new(
        FmConfig { sample_rate: 4 },
        DynOptions::default(),
        RebuildMode::Inline,
    );
    let mut t2sa: Transform2Index<SaIndex> =
        Transform2Index::new((), DynOptions::default(), RebuildMode::Inline);
    let mut base = DynFmBaseline::new();
    let mut stream = Stream::new(0x5EED);
    for step in 0..300 {
        match stream.op() {
            Ok((id, doc)) => {
                t1.insert(id, &doc);
                t2.insert(id, &doc);
                t2sa.insert(id, &doc);
                base.insert(id, &doc);
            }
            Err(id) => {
                t1.delete(id);
                t2.delete(id);
                t2sa.delete(id);
                base.delete(id);
            }
        }
        if step % 59 == 0 {
            for &p in PATTERNS {
                let c = t1.count(p);
                assert_eq!(t2.count(p), c, "t2 at {step}");
                assert_eq!(t2sa.count(p), c, "t2sa at {step}");
                assert_eq!(base.count(p), c, "baseline at {step}");
                let mut f1 = t1.find(p);
                let mut f2 = t2.find(p);
                f1.sort();
                f2.sort();
                assert_eq!(f1, f2, "find at {step}");
            }
        }
    }
}

#[test]
fn compressed_space_tracks_entropy() {
    // The compressed dynamic index must use far fewer bits/symbol than the
    // raw 8 (for skewed text), and the SA-backed one noticeably more.
    let text: Vec<u8> = b"abracadabra alakazam abracadabra alakazam "
        .iter()
        .copied()
        .cycle()
        .take(1 << 16)
        .collect();
    let docs: Vec<(u64, Vec<u8>)> = text
        .chunks(512)
        .enumerate()
        .map(|(i, c)| (i as u64, c.to_vec()))
        .collect();
    let mut fm_idx: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 32 }, DynOptions::default());
    for (id, d) in &docs {
        fm_idx.insert(*id, d);
    }
    let bits_per_sym = fm_idx.heap_bytes() as f64 * 8.0 / fm_idx.symbol_count() as f64;
    let h0 = dyndex::succinct::entropy::h0(&text);
    assert!(
        bits_per_sym < 24.0,
        "compressed index too large: {bits_per_sym:.1} bits/sym (H0 = {h0:.2})"
    );
    // Sanity: queries still correct on the periodic text (count per chunk,
    // since chunking removed boundary-crossing occurrences).
    let want: usize = docs
        .iter()
        .map(|(_, d)| d.windows(11).filter(|w| w == b"abracadabra").count())
        .sum();
    assert_eq!(fm_idx.count(b"abracadabra"), want);
}
