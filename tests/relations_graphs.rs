//! Integration tests for §5: relations and graphs at moderate scale,
//! including the RDF-style access patterns from the paper's introduction.

use dyndex::prelude::*;
use dyndex::relations::NaiveRelation;

#[test]
fn relation_scale_churn() {
    let mut dynr = DynamicRelation::new(DynOptions::default());
    let mut naive = NaiveRelation::new();
    let mut state = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..5_000 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let o = state % 200;
        let l = 1_000 + (state >> 20) % 150;
        if !state.is_multiple_of(4) {
            assert_eq!(dynr.insert(o, l), naive.insert(o, l));
        } else {
            assert_eq!(dynr.delete(o, l), naive.delete(o, l));
        }
    }
    dynr.check_invariants();
    assert_eq!(dynr.len(), naive.len());
    for o in (0..200).step_by(17) {
        assert_eq!(dynr.labels_of(o), naive.labels_of(o), "labels_of({o})");
        assert_eq!(dynr.count_labels(o), naive.count_labels(o));
    }
    for l in (1_000..1_150).step_by(13) {
        assert_eq!(dynr.objects_of(l), naive.objects_of(l), "objects_of({l})");
        assert_eq!(dynr.count_objects(l), naive.count_objects(l));
    }
}

#[test]
fn graph_triangle_census_stays_consistent() {
    // Insert a known structure, delete parts, verify adjacency exactly.
    let mut g = DynamicGraph::new(DynOptions::default());
    let n = 40u64;
    // Complete bipartite-ish: evens -> odds.
    for u in (0..n).step_by(2) {
        for v in (1..n).step_by(2) {
            assert!(g.add_edge(u, v));
        }
    }
    assert_eq!(g.num_edges(), (n as usize / 2) * (n as usize / 2));
    for u in (0..n).step_by(2) {
        assert_eq!(g.out_degree(u), n as usize / 2);
        assert_eq!(g.in_degree(u), 0);
    }
    // Remove one node entirely.
    let removed = g.remove_node(1);
    assert_eq!(removed, n as usize / 2);
    for u in (0..n).step_by(2) {
        assert!(!g.has_edge(u, 1));
        assert_eq!(g.out_degree(u), n as usize / 2 - 1);
    }
    g.check_invariants();
}

#[test]
fn rdf_two_relations_view() {
    // The paper's motivating decomposition: subject-predicate and
    // predicate-object relations over the same triple set.
    let triples: &[(u64, u64, u64)] = &[
        (1, 10, 100),
        (1, 10, 101),
        (1, 11, 100),
        (2, 10, 100),
        (3, 12, 103),
    ];
    let mut sp = DynamicRelation::new(DynOptions::default()); // subject -> predicate
    let mut po = DynamicRelation::new(DynOptions::default()); // predicate -> object
    for &(s, p, o) in triples {
        sp.insert(s, p);
        po.insert(p, o);
    }
    // "enumerate all triples in which 1 occurs as a subject"
    assert_eq!(sp.labels_of(1), vec![10, 11]);
    // "given subject 1 and predicate 10, enumerate objects"
    assert!(sp.related(1, 10));
    assert_eq!(po.labels_of(10), vec![100, 101]);
    // reverse: which subjects use predicate 10?
    assert_eq!(sp.objects_of(10), vec![1, 2]);
}

#[test]
fn empty_label_and_object_lifecycle() {
    let mut r = DynamicRelation::new(DynOptions::default());
    r.insert(5, 50);
    assert_eq!(r.num_objects(), 1);
    assert_eq!(r.num_labels(), 1);
    r.delete(5, 50);
    // Paper: "an object that is not related to any label … can be removed".
    assert_eq!(r.num_objects(), 0);
    assert_eq!(r.num_labels(), 0);
    assert!(r.is_empty());
    // Reinsertion after emptying must work (slot reuse).
    r.insert(5, 50);
    r.insert(5, 51);
    assert_eq!(r.labels_of(5), vec![50, 51]);
    r.check_invariants();
}
