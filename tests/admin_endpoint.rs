//! Integration: the flight recorder and health watchdog observed the way
//! an operator sees them — over a real TCP connection to the store's
//! admin endpoint. A store runs with `admin: Some("127.0.0.1:0")`, a
//! mixed workload drives it, and raw `std::net::TcpStream` requests
//! assert that `/metrics` parses and matches `render_metrics()`, that
//! `/spans` shows a query root with per-shard execute children whose
//! epochs match the served views, and that an induced writer stall flips
//! `/health` to degraded and back.

use dyndex::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

type Store = ShardedStore<FmIndexCompressed>;

const SHARDS: usize = 4;

/// A store with the admin endpoint on an ephemeral port, a tight writer
/// stall threshold (so the test can induce one quickly), and an
/// hour-long maintenance tick — workers wake on job arrival, but no
/// periodic tick republishes views behind the test's epoch assertions.
fn admin_store() -> Store {
    Store::new(
        FmConfig { sample_rate: 8 },
        StoreOptions {
            num_shards: SHARDS,
            index: DynOptions::default(),
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Periodic(Duration::from_secs(3600)),
            fan_out: FanOutPolicy::Pooled,
            telemetry: Telemetry::Enabled,
            health: HealthOptions {
                writer_stall_after: Duration::from_millis(100),
                // Generous job/heartbeat bounds: the watchdog must not
                // misread this test's own pauses as a stuck worker.
                stuck_worker_after: Duration::from_secs(60),
                stalled_rebuild_after: Duration::from_secs(3600),
                ..HealthOptions::default()
            },
            admin: Some("127.0.0.1:0".to_string()),
        },
    )
}

/// One plain-text HTTP GET over a raw `TcpStream` — exactly what `curl`
/// or a Prometheus scraper would do.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to admin endpoint");
    write!(conn, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).expect("read response");
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Parses Prometheus text exposition into `name{labels} -> value`,
/// failing the test on any sample line that does not parse.
fn parse_exposition(body: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparsable sample line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line:?}"));
        samples.insert(name.to_string(), value);
    }
    samples
}

fn seed_documents(store: &Store) {
    for id in 0..48u64 {
        store
            .insert(
                id,
                format!("flightrec document {id} with shared tokens").as_bytes(),
            )
            .unwrap();
    }
    store.flush();
}

#[test]
fn metrics_over_tcp_match_render_metrics() {
    let store = admin_store();
    let addr = store.admin_addr().expect("admin endpoint is enabled");
    seed_documents(&store);
    // Mixed read workload so every query series has samples.
    for _ in 0..8 {
        assert_eq!(store.count(b"flightrec"), 48);
        assert!(!store.find(b"shared tokens").is_empty());
        assert_eq!(store.find_limit(b"document", 5).len(), 5);
    }

    let local = store.render_metrics().expect("telemetry is enabled");
    let (status, scraped) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    // Quiescent store: the scrape and the local render see identical
    // state, so the exposition matches sample-for-sample.
    let local = parse_exposition(&local);
    let scraped = parse_exposition(&scraped);
    assert!(!scraped.is_empty(), "scrape must carry samples");
    assert_eq!(local, scraped, "/metrics must match render_metrics()");

    // Spot-check the series the flight recorder and tracer contribute.
    for name in [
        "dyndex_trace_spans_recorded",
        "dyndex_trace_spans_dropped",
        "dyndex_flight_spans_recorded",
    ] {
        assert!(scraped.contains_key(name), "missing {name} in scrape");
    }
    assert!(scraped["dyndex_flight_spans_recorded"] > 0.0);

    // Unknown paths 404 rather than panicking a handler thread.
    let (status, _) = http_get(addr, "/unknown");
    assert_eq!(status, 404);
}

#[test]
fn spans_over_tcp_show_query_tree_with_served_epochs() {
    let store = admin_store();
    let addr = store.admin_addr().expect("admin endpoint is enabled");
    seed_documents(&store);

    // The epochs the next fan-out will serve: nothing republishes views
    // between this read and the query (hour-long tick, no writes).
    let epochs: Vec<u64> = (0..SHARDS).map(|s| store.shard_view(s).epoch()).collect();
    assert_eq!(store.count(b"flightrec"), 48);

    let (status, body) = http_get(addr, "/spans");
    assert_eq!(status, 200);

    // Last `count` root in the rendered ring (roots print unindented).
    let root_line = body
        .lines()
        .rfind(|l| l.starts_with("count id="))
        .unwrap_or_else(|| panic!("no count root span in /spans:\n{body}"));
    let root_id = field(root_line, "id=");

    // Its per-shard execute children carry the epoch each worker served.
    let mut seen = vec![false; SHARDS];
    for line in body.lines() {
        let line = line.trim_start();
        if !line.starts_with("execute ") || field(line, "parent=") != root_id {
            continue;
        }
        let shard = field(line, "shard=") as usize;
        let lo = field(line, "epochs=");
        let hi = field(line, "..=");
        assert_eq!(lo, epochs[shard], "shard {shard} epoch_lo");
        assert_eq!(hi, epochs[shard], "shard {shard} epoch_hi");
        seen[shard] = true;
    }
    assert_eq!(
        seen,
        vec![true; SHARDS],
        "every shard must contribute an execute child:\n{body}"
    );

    // Queue-wait children ride under the same root.
    assert!(
        body.lines()
            .any(|l| l.trim_start().starts_with("queue_wait ")
                && field(l.trim_start(), "parent=") == root_id),
        "query root must carry queue_wait children:\n{body}"
    );
}

/// Extracts the number following `key` in a rendered span line.
fn field(line: &str, key: &str) -> u64 {
    let rest = &line[line
        .find(key)
        .unwrap_or_else(|| panic!("{key} in {line:?}"))
        + key.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("{key} numeric in {line:?}"))
}

#[test]
fn induced_writer_stall_flips_health_and_recovers() {
    let store = admin_store();
    let addr = store.admin_addr().expect("admin endpoint is enabled");
    seed_documents(&store);

    let (status, body) = http_get(addr, "/health");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // Induce the stall: hold shard 0's write lock past the 100ms
    // watchdog threshold. `/health` must stay answerable (reads never
    // take shard locks) and must name the stalled shard.
    {
        let _guard = store.lock_shard(0);
        std::thread::sleep(Duration::from_millis(300));
        let (status, body) = http_get(addr, "/health");
        assert_eq!(status, 200, "degraded is still scrape-okay");
        assert!(
            body.starts_with("degraded:"),
            "expected degraded, got {body:?}"
        );
        assert!(
            body.contains("shard 0 write lock"),
            "stall must name the shard: {body:?}"
        );
        // Queries keep serving from published views mid-stall.
        assert_eq!(store.count(b"flightrec"), 48);
    }

    // Guard dropped: the next check observes the released lock.
    let (status, body) = http_get(addr, "/health");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n", "health must recover after the stall clears");
}

#[test]
fn poisoned_shard_counts_once_and_degrades_health() {
    let store = admin_store();
    let addr = store.admin_addr().expect("admin endpoint is enabled");
    seed_documents(&store);
    let registry = store.metrics().expect("telemetry is enabled");
    let poisoned_events = registry
        .find_counter("dyndex_store_shards_poisoned_total")
        .expect("poison event counter registered");
    assert_eq!(poisoned_events.get(), 0);

    let count_before = store.count(b"flightrec");
    let poisoned_shard = store.shard_of(0);

    // Poison: a duplicate insert panics while the shard write guard is
    // held; the guard's unwind path latches the poison event exactly
    // once.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = store.insert(0, b"duplicate id panics the writer");
    }))
    .expect_err("duplicate insert must panic");
    assert_eq!(poisoned_events.get(), 1, "one poisoning, one event");

    // Refused follow-up writes return the typed error without
    // re-counting the poisoning.
    let mut same_shard_id = 1_000u64;
    while store.shard_of(same_shard_id) != poisoned_shard {
        same_shard_id += 1;
    }
    assert_eq!(
        store.insert(same_shard_id, b"refused"),
        Err(ShardPoisoned {
            shard: poisoned_shard
        })
    );
    assert_eq!(
        poisoned_events.get(),
        1,
        "refused writes must not re-count the poison event"
    );

    // Reads keep serving the last published views.
    assert_eq!(store.count(b"flightrec"), count_before);
    assert!(store.contains(0));

    // Both the typed report and the endpoint name the shard.
    let report = store.health();
    assert_eq!(report.status, HealthStatus::Degraded);
    assert!(report
        .reasons
        .iter()
        .any(|r| matches!(r, HealthReason::ShardPoisoned { shard } if *shard == poisoned_shard)));
    let (status, body) = http_get(addr, "/health");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("shard {poisoned_shard} poisoned")),
        "endpoint must name the poisoned shard: {body:?}"
    );

    // The scrape exposes both poison series: the one-shot event count
    // and the per-refusal counter.
    let (_, metrics) = http_get(addr, "/metrics");
    let samples = parse_exposition(&metrics);
    assert_eq!(samples["dyndex_store_shards_poisoned_total"], 1.0);
    assert!(samples["dyndex_store_shard_poisoned"] >= 1.0);
}

#[test]
fn admin_endpoint_shuts_down_with_the_store() {
    let store = admin_store();
    let addr = store.admin_addr().expect("admin endpoint is enabled");
    let (status, _) = http_get(addr, "/health");
    assert_eq!(status, 200);
    drop(store);
    // Graceful shutdown released the port: it can be bound again.
    assert!(std::net::TcpListener::bind(addr).is_ok());
}
