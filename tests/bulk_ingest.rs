//! Acceptance: the bulk-ingestion fast path. `ingest(stream)` on the
//! deterministic `DEFAULT_SEED` workload answers `count` / `find` /
//! `find_limit` / `extract` **byte-identically** to insert-at-a-time,
//! with deletes interleaved between ingest waves and a background
//! snapshot racing a pooled ingest. The durable layer logs each ingested
//! chunk as **one coalesced WAL frame** (counted on disk against the
//! raw frame format) and recovers cleanly from a torn batched frame.

use dyndex::prelude::*;
use dyndex_bench::workloads::{markov_text, planted_patterns, rng, split_documents, DEFAULT_SEED};
use std::path::{Path, PathBuf};
use std::time::Duration;

type Durable = DurableStore<FmIndexCompressed>;
type Store = ShardedStore<FmIndexCompressed>;
type Docs = Vec<(u64, Vec<u8>)>;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p =
            std::env::temp_dir().join(format!("dyndex-bulk-accept-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The seeded acceptance workload (same generator pipeline as the
/// persistence suite): Markov text split into documents, planted
/// patterns so every query has hits, plus one absent pattern.
fn workload() -> (Docs, Vec<Vec<u8>>) {
    let mut r = rng(DEFAULT_SEED);
    let text = markov_text(&mut r, 40_000, 26, 2);
    let docs = split_documents(&mut r, &text, 64, 256, 0);
    let mut patterns = planted_patterns(&mut r, &docs, 6, 12);
    patterns.push(b"zzzzzzzz".to_vec()); // absent pattern
    (docs, patterns)
}

fn fm() -> FmConfig {
    FmConfig { sample_rate: 8 }
}

fn opts(num_shards: usize) -> StoreOptions {
    StoreOptions {
        num_shards,
        index: DynOptions::default(),
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..StoreOptions::default()
    }
}

/// Bulk-built and serially-built stores hold *different level layouts*
/// by design, so equality is asserted where the query contract defines
/// it: `count`/`find` always (find is fully sorted — set-identical is
/// byte-identical), `extract`/`contains` per document, and `find_limit`
/// byte-identically whenever `limit >= count` or `limit == 0` (the
/// documented determinism boundary — truncation choice may differ
/// between layouts). Truncating limits still must return exactly
/// `min(limit, count)` sorted occurrences drawn from the full set.
fn assert_query_identical(bulk: &Store, serial: &Store, patterns: &[Vec<u8>], max_id: u64) {
    assert_eq!(bulk.num_docs(), serial.num_docs());
    assert_eq!(bulk.symbol_count(), serial.symbol_count());
    for pattern in patterns {
        let tag = String::from_utf8_lossy(pattern).into_owned();
        let count = serial.count(pattern);
        assert_eq!(bulk.count(pattern), count, "count {tag:?}");
        let full = serial.find(pattern);
        assert_eq!(bulk.find(pattern), full, "find {tag:?}");
        assert!(full.windows(2).all(|w| w[0] <= w[1]), "find is sorted");
        for limit in [0usize, count, count + 3, usize::MAX] {
            assert_eq!(
                bulk.find_limit(pattern, limit),
                serial.find_limit(pattern, limit),
                "find_limit({limit}) {tag:?}"
            );
        }
        for limit in [1usize, 5, 17] {
            let got = bulk.find_limit(pattern, limit);
            assert_eq!(got.len(), limit.min(count), "find_limit({limit}) {tag:?}");
            assert!(got.windows(2).all(|w| w[0] <= w[1]));
            assert!(
                got.iter().all(|occ| full.contains(occ)),
                "find_limit({limit}) must draw from the exact set: {tag:?}"
            );
        }
    }
    for id in 0..max_id {
        assert_eq!(bulk.contains(id), serial.contains(id), "contains {id}");
        assert_eq!(
            bulk.extract(id, 0, 300),
            serial.extract(id, 0, 300),
            "extract {id}"
        );
        assert_eq!(bulk.extract(id, 13, 40), serial.extract(id, 13, 40));
    }
}

/// The headline property: ingest in waves with deletes interleaved
/// between them answers identically to inserting every document one at
/// a time with the same deletes at the same points.
#[test]
fn ingest_matches_insert_at_a_time_byte_identical() {
    let (docs, patterns) = workload();
    let bulk = Store::new(fm(), opts(4));
    let serial = Store::new(fm(), opts(4));

    let third = docs.len() / 3;
    let doomed_early: Vec<u64> = (0..third as u64).filter(|id| id % 7 == 2).collect();
    let doomed_late: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 11 == 5).collect();
    let doomed_late: Vec<u64> = doomed_late
        .into_iter()
        .filter(|id| !doomed_early.contains(id))
        .collect();

    // Bulk path: wave of ingest, deletes, another wave, more deletes.
    let stats = bulk
        .ingest_with_chunk_symbols(docs[..third].iter().cloned(), 4096)
        .expect("first wave");
    assert_eq!(stats.docs as usize, third);
    assert!(stats.levels > 1, "4096-byte chunks must cut levels");
    assert_eq!(
        bulk.delete_batch(&doomed_early)
            .expect("interleaved delete"),
        doomed_early.len()
    );
    bulk.ingest_with_chunk_symbols(docs[third..].iter().cloned(), 4096)
        .expect("second wave");
    assert_eq!(
        bulk.delete_batch(&doomed_late).expect("late delete"),
        doomed_late.len()
    );

    // Serial path: the same history through insert-at-a-time.
    for (id, bytes) in &docs[..third] {
        serial.insert(*id, bytes).expect("insert");
    }
    serial.delete_batch(&doomed_early).expect("delete");
    for (id, bytes) in &docs[third..] {
        serial.insert(*id, bytes).expect("insert");
    }
    serial.delete_batch(&doomed_late).expect("delete");

    assert_query_identical(&bulk, &serial, &patterns, docs.len() as u64);
    assert_eq!(bulk.stats().ingested_docs, docs.len() as u64);
}

/// A background snapshot racing a pooled ingest: queries and the
/// snapshot writer both keep working off published views while chunks
/// install. The snapshot captures a consistent point-in-time subset
/// (every document it holds extracts byte-identically), and the live
/// store finishes byte-identical to the serial reference.
#[test]
fn background_snapshot_races_ingest() {
    let (docs, patterns) = workload();
    let dir = TempDir::new("mid-ingest-snap");
    let bulk = Store::new(
        fm(),
        StoreOptions {
            fan_out: FanOutPolicy::Pooled,
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
            ..opts(4)
        },
    );
    let serial = Store::new(fm(), opts(4));
    for chunk in docs.chunks(64) {
        serial.insert_batch(chunk).expect("reference insert");
    }

    std::thread::scope(|scope| {
        let snap = scope.spawn(|| {
            // Land mid-ingest: small chunks below give many install
            // points for the snapshot's per-shard freezes to interleave.
            bulk.snapshot_with(&dir.0, SnapshotMode::Background)
                .expect("mid-ingest snapshot")
        });
        let mut served = 0usize;
        let ingest = scope.spawn(|| {
            bulk.ingest_with_chunk_symbols(docs.iter().cloned(), 2048)
                .expect("ingest under snapshot")
        });
        while !ingest.is_finished() {
            // Queries answer from published views the whole time.
            let _ = bulk.count(&patterns[served % patterns.len()]);
            served += 1;
        }
        let stats = ingest.join().expect("ingest thread");
        assert_eq!(stats.docs as usize, docs.len());
        let snap_stats = snap.join().expect("snapshot thread");
        assert_eq!(snap_stats.shards, 4);
        assert!(served > 0, "queries ran during ingest");
    });
    bulk.flush();
    assert_query_identical(&bulk, &serial, &patterns, docs.len() as u64);

    // The racing snapshot restores to a consistent subset: whatever
    // documents it caught answer byte-identically to their source.
    let restored = Store::restore(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Manual,
            ..RestoreOptions::default()
        },
    )
    .expect("restore racing snapshot");
    assert!(restored.num_docs() <= docs.len());
    let mut caught = 0usize;
    for (id, bytes) in &docs {
        if restored.contains(*id) {
            caught += 1;
            assert_eq!(
                restored.extract(*id, 0, bytes.len()).as_deref(),
                Some(bytes.as_slice()),
                "doc {id} must extract byte-identically"
            );
        }
    }
    assert_eq!(restored.num_docs(), caught);
}

// ----------------------------------------------------------------------
// WAL coalescing: one frame per ingested chunk
// ----------------------------------------------------------------------

/// Walks the raw on-disk frame format (`payload_len u32 | crc32 u32 |
/// payload`, payload = `seq u64 | kind u8 | body`) and returns the
/// frame count per record kind (1 = insert, 2 = delete, 3 = ingest).
fn wal_frames(path: &Path) -> Vec<u8> {
    let bytes = std::fs::read(path).expect("read wal");
    let mut kinds = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        assert!(pos + 8 + len <= bytes.len(), "frame must not overrun file");
        kinds.push(bytes[pos + 8 + 8]); // kind byte follows the u64 seq
        pos += 8 + len;
    }
    assert_eq!(pos, bytes.len(), "no trailing garbage");
    kinds
}

fn wal_path_of(dir: &Path, shard: usize) -> PathBuf {
    dir.join("wal").join(format!("shard-{shard:04}.wal"))
}

/// Durable bulk ingest logs one coalesced `IngestBatch` frame per
/// built chunk — hundreds of documents, a handful of frames — and the
/// log replays byte-identically on reopen.
#[test]
fn durable_ingest_coalesces_wal_frames() {
    let (docs, patterns) = workload();
    let dir = TempDir::new("coalesce");
    let live = Durable::create_with_wal(
        &dir.0,
        fm(),
        opts(2),
        WalOptions {
            sync: SyncPolicy::Batched {
                every: 4,
                max_delay: Duration::from_millis(50),
            },
        },
    )
    .expect("create");
    let stats = live
        .ingest_with_chunk_symbols(docs.iter().cloned(), 4096)
        .expect("ingest");
    assert_eq!(stats.docs as usize, docs.len());
    live.sync_wal().expect("sync");

    let mut frames = 0usize;
    for shard in 0..2 {
        let kinds = wal_frames(&wal_path_of(&dir.0, shard));
        assert!(
            kinds.iter().all(|&k| k == 3),
            "bulk ingest must log only IngestBatch frames, got {kinds:?}"
        );
        frames += kinds.len();
    }
    assert_eq!(
        frames, stats.levels as usize,
        "one coalesced frame per built chunk"
    );
    assert!(
        frames < docs.len() / 10,
        "coalescing must beat per-document logging: {frames} frames for {} docs",
        docs.len()
    );

    let want: Vec<usize> = patterns.iter().map(|p| live.count(p)).collect();
    drop(live);
    let reopened = Durable::open(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Manual,
            ..RestoreOptions::default()
        },
    )
    .expect("open");
    assert_eq!(reopened.num_docs(), docs.len());
    for (pattern, want) in patterns.iter().zip(want) {
        assert_eq!(reopened.count(pattern), want);
    }
}

/// Torn-tail recovery for the batched frame: chop a reopened log
/// mid-frame and the store must come back with every *whole* logged
/// chunk intact — the torn chunk vanishes atomically (all-or-nothing
/// per frame), never as a partial batch.
#[test]
fn torn_ingest_frame_recovers_to_last_whole_chunk() {
    let (docs, _) = workload();
    let dir = TempDir::new("torn");
    let live = Durable::create(&dir.0, fm(), opts(1)).expect("create");
    let stats = live
        .ingest_with_chunk_symbols(docs.iter().cloned(), 4096)
        .expect("ingest");
    assert!(stats.levels >= 3, "need several frames to tear one off");
    live.sync_wal().expect("sync");
    drop(live);

    // Tear the last frame: chop 5 bytes off the log so its trailing
    // IngestBatch fails the length/crc check.
    let path = wal_path_of(&dir.0, 0);
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");

    let reopened = Durable::open(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Manual,
            ..RestoreOptions::default()
        },
    )
    .expect("torn tail must not block recovery");
    let survivors = reopened.num_docs();
    assert!(survivors < docs.len(), "the torn chunk is gone");
    assert!(survivors > 0, "whole frames before the tear replay");

    // Replayed documents are byte-identical to their sources, and the
    // boundary is a chunk boundary: surviving ids are exactly a prefix
    // of the ingest order (single shard → routing preserves order).
    let mut seen_missing = false;
    for (id, bytes) in &docs {
        if reopened.store().contains(*id) {
            assert!(!seen_missing, "survivors must form a chunk-aligned prefix");
            assert_eq!(
                reopened.extract(*id, 0, bytes.len()).as_deref(),
                Some(bytes.as_slice())
            );
        } else {
            seen_missing = true;
        }
    }
    assert!(seen_missing);

    // The recovered store accepts new work and logs it after the tear.
    reopened.insert(9_999_999, b"life goes on").expect("insert");
    assert_eq!(reopened.count(b"life goes on"), 1);
}
