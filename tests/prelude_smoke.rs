//! Smoke test for the `dyndex::prelude` facade: every name a downstream
//! user reaches through the flat re-export surface is exercised here, so
//! breaking a re-export (or the API behind it) fails tier-1 immediately.

use dyndex::prelude::*;

#[test]
fn prelude_text_index_round_trip() {
    let mut index: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());

    index.insert(1, b"compressed dynamic indexing");
    index.insert(2, b"dynamic graphs and relations");
    index.insert(3, b"static structures stay static");

    assert_eq!(index.count(b"dynamic"), 2);
    assert_eq!(index.count(b"static"), 2);
    assert_eq!(index.count(b"missing"), 0);

    let mut hits = index.find(b"dynamic");
    hits.sort();
    assert_eq!(
        hits,
        vec![
            Occurrence { doc: 1, offset: 11 },
            Occurrence { doc: 2, offset: 0 },
        ]
    );

    assert_eq!(
        index.delete(1).as_deref(),
        Some(b"compressed dynamic indexing".as_slice())
    );
    assert_eq!(index.count(b"dynamic"), 1);
    assert_eq!(index.delete(1), None);
}

#[test]
fn prelude_alternate_transforms_and_backends() {
    // Transform2 (worst-case) and the SA-backed static index, both reached
    // purely through prelude names.
    let mut t2: Transform2Index<SaIndex> =
        Transform2Index::new((), DynOptions::default(), RebuildMode::Inline);
    t2.insert(10, b"abracadabra");
    t2.insert(11, b"abrasive");
    assert_eq!(t2.count(b"abra"), 3);
    t2.delete(10);
    assert_eq!(t2.count(b"abra"), 1);

    let mut t3: Transform3Index<FmIndexPlain> =
        new_transform3(FmConfig { sample_rate: 4 }, Default::default());
    t3.insert(7, b"log log n levels");
    assert_eq!(t3.count(b"log"), 2);

    // Ground truth comparator is part of the facade too.
    let mut truth = NaiveIndex::new();
    truth.insert(7, b"log log n levels");
    assert_eq!(truth.count(b"log"), t3.count(b"log"));
}

#[test]
fn prelude_graph_and_relation_round_trip() {
    let mut graph = DynamicGraph::new(DynOptions::default());
    assert!(graph.add_edge(1, 2));
    assert!(graph.add_edge(1, 3));
    assert!(!graph.add_edge(1, 2), "duplicate edge must be rejected");
    assert!(graph.has_edge(1, 2));
    assert_eq!(graph.out_neighbors(1), vec![2, 3]);
    assert_eq!(graph.in_neighbors(3), vec![1]);
    assert!(graph.remove_edge(1, 2));
    assert!(!graph.has_edge(1, 2));
    assert_eq!(graph.num_edges(), 1);

    let mut relation = DynamicRelation::new(DynOptions::default());
    assert!(relation.insert(5, 50));
    assert!(relation.insert(5, 51));
    assert_eq!(relation.labels_of(5), vec![50, 51]);
    assert!(relation.delete(5, 50));
    assert_eq!(relation.labels_of(5), vec![51]);
}

#[test]
fn prelude_space_usage_is_reachable() {
    // `SpaceUsage` comes through the prelude from dyndex-succinct.
    let mut index: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());
    index.insert(1, b"some document contents to account for");
    assert!(index.heap_bytes() > 0);
}
