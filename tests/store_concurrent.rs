//! Integration: the sharded store vs one unsharded `Transform2Index` on
//! the deterministic `DEFAULT_SEED` workload — byte-identical `count` /
//! `find` answers while background maintenance jobs are in flight — plus
//! genuinely concurrent readers and writers.

use dyndex::prelude::*;
use dyndex_bench::workloads::{markov_text, planted_patterns, rng, split_documents, DEFAULT_SEED};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Store = ShardedStore<FmIndexCompressed>;
type Reference = Transform2Index<FmIndexCompressed>;

fn fm() -> FmConfig {
    FmConfig { sample_rate: 8 }
}

type Docs = Vec<(u64, Vec<u8>)>;

/// The acceptance workload: seeded Markov text split into documents, with
/// planted patterns (every query has hits).
fn workload() -> (Docs, Vec<Vec<u8>>) {
    let mut r = rng(DEFAULT_SEED);
    let text = markov_text(&mut r, 40_000, 26, 2);
    let docs = split_documents(&mut r, &text, 64, 256, 0);
    let mut patterns = planted_patterns(&mut r, &docs, 6, 12);
    patterns.push(b"zzzzzzzz".to_vec()); // absent pattern
    (docs, patterns)
}

fn assert_store_matches(store: &Store, reference: &Reference, patterns: &[Vec<u8>], at: &str) {
    for pattern in patterns {
        assert_eq!(
            store.count(pattern),
            reference.count(pattern),
            "count mismatch {at}, pattern {:?}",
            String::from_utf8_lossy(pattern)
        );
        let sharded = store.find(pattern);
        let mut single = reference.find(pattern);
        single.sort();
        assert_eq!(
            sharded,
            single,
            "find mismatch {at}, pattern {:?}",
            String::from_utf8_lossy(pattern)
        );
    }
}

/// Acceptance criterion: a 4-shard store answers byte-identically to an
/// unsharded index on the `DEFAULT_SEED` workload, with queries served
/// while background rebuild jobs are in flight.
#[test]
fn sharded_matches_unsharded_with_jobs_in_flight() {
    let (docs, patterns) = workload();
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Manual,
            ..StoreOptions::default()
        },
    );
    let mut reference = Reference::new(fm(), DynOptions::default(), RebuildMode::Background);

    let mut saw_pending = 0usize;
    for chunk in docs.chunks(24) {
        store.insert_batch(chunk).unwrap();
        for (id, bytes) in chunk {
            reference.insert(*id, bytes);
        }
        // Query mid-stream: background jobs from the batch are typically
        // still building; answers must already be exact.
        saw_pending += store.pending_background_jobs();
        assert_store_matches(&store, &reference, &patterns[..3], "mid-insert");
    }
    assert!(
        saw_pending > 0,
        "workload must actually exercise in-flight background jobs"
    );
    assert_store_matches(&store, &reference, &patterns, "after inserts");
    assert_eq!(store.num_docs(), docs.len());
    assert_eq!(store.symbol_count(), reference.symbol_count());

    // Delete a third of the documents through the batch path.
    let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 3 == 0).collect();
    assert_eq!(store.delete_batch(&doomed).unwrap(), doomed.len());
    for id in &doomed {
        reference.delete(*id);
    }
    assert_store_matches(&store, &reference, &patterns, "after deletes");

    // Drain all maintenance on both sides; answers must not change.
    store.finish_background_work();
    reference.finish_background_work();
    assert_eq!(store.pending_background_jobs(), 0);
    assert_store_matches(&store, &reference, &patterns, "after drain");

    let stats = store.stats();
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.total_docs(), docs.len() - doomed.len());
    assert_eq!(stats.total_symbols(), store.symbol_count());
    assert_eq!(stats.pending_jobs(), 0);
}

/// Readers on their own threads get exact answers while a writer thread
/// streams inserts/deletes and the periodic scheduler installs rebuilds.
#[test]
fn concurrent_readers_during_writes_and_maintenance() {
    let (docs, patterns) = workload();
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
            ..StoreOptions::default()
        },
    );
    let total_occurrences: usize = patterns
        .iter()
        .map(|p| {
            docs.iter()
                .map(|(_, d)| d.windows(p.len()).filter(|w| *w == p.as_slice()).count())
                .sum::<usize>()
        })
        .sum();

    let writer_done = AtomicBool::new(false);
    let reader_queries = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                while !writer_done.load(Ordering::Acquire) {
                    for pattern in &patterns {
                        // Monotone insert-only stream: every snapshot is
                        // bounded by the final corpus total. (count and
                        // find_limit are *separate* snapshots — the writer
                        // may land documents between them.)
                        let n = store.count(pattern);
                        assert!(n <= total_occurrences);
                        let hits = store.find_limit(pattern, 5);
                        assert!(hits.len() <= 5);
                        assert!(hits.windows(2).all(|w| w[0] < w[1]), "sorted merge");
                        reader_queries.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for chunk in docs.chunks(16) {
            store.insert_batch(chunk).unwrap();
        }
        writer_done.store(true, Ordering::Release);
    });
    assert!(
        reader_queries.load(Ordering::Relaxed) > 0,
        "readers must have run concurrently with the writer"
    );

    // Settle and verify against the unsharded reference.
    store.finish_background_work();
    let mut reference = Reference::new(fm(), DynOptions::default(), RebuildMode::Inline);
    for (id, bytes) in &docs {
        reference.insert(*id, bytes);
    }
    reference.finish_background_work();
    assert_store_matches(&store, &reference, &patterns, "after concurrent run");
    assert_eq!(store.num_docs(), docs.len());
}

// ----------------------------------------------------------------------
// Worker-pool lifecycle (FanOutPolicy::Pooled)
// ----------------------------------------------------------------------

fn pooled_opts(mode: RebuildMode) -> StoreOptions {
    StoreOptions {
        num_shards: 4,
        index: DynOptions::default(),
        mode,
        maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
        fan_out: FanOutPolicy::Pooled,
        ..StoreOptions::default()
    }
}

/// Acceptance criterion for the pool: a store fanning out on resident
/// workers answers `count`/`find` byte-identically to an unsharded
/// `Transform2Index` on the `DEFAULT_SEED` workload — with rebuild jobs
/// in flight and the workers installing them concurrently — and its
/// `find_limit` truncation is byte-identical to a `ScopedSpawn` twin
/// driven through the identical op sequence.
#[test]
fn pooled_store_matches_unsharded_on_default_seed() {
    let (docs, patterns) = workload();
    // Inline rebuilds: shard layout is a pure function of the op
    // sequence, so the pooled and scoped twins stay layout-identical
    // and even truncated find_limit answers must agree byte-for-byte.
    let pooled = Store::new(fm(), pooled_opts(RebuildMode::Inline));
    let scoped = Store::new(
        fm(),
        StoreOptions {
            fan_out: FanOutPolicy::ScopedSpawn,
            ..pooled_opts(RebuildMode::Inline)
        },
    );
    assert_eq!(pooled.worker_threads(), 4);
    assert_eq!(pooled.fan_out_policy(), FanOutPolicy::Pooled);
    assert_eq!(scoped.fan_out_policy(), FanOutPolicy::ScopedSpawn);
    let mut reference = Reference::new(fm(), DynOptions::default(), RebuildMode::Inline);

    for chunk in docs.chunks(24) {
        pooled.insert_batch(chunk).unwrap();
        scoped.insert_batch(chunk).unwrap();
        for (id, bytes) in chunk {
            reference.insert(*id, bytes);
        }
    }
    let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 3 == 0).collect();
    assert_eq!(pooled.delete_batch(&doomed).unwrap(), doomed.len());
    assert_eq!(scoped.delete_batch(&doomed).unwrap(), doomed.len());
    for id in &doomed {
        reference.delete(*id);
    }

    assert_store_matches(&pooled, &reference, &patterns, "pooled vs unsharded");
    for pattern in &patterns {
        for limit in [0usize, 1, 5, 17, 1000, usize::MAX] {
            assert_eq!(
                pooled.find_limit(pattern, limit),
                scoped.find_limit(pattern, limit),
                "pooled vs scoped find_limit({limit}), pattern {:?}",
                String::from_utf8_lossy(pattern)
            );
        }
    }

    // Same acceptance under background rebuilds with jobs in flight:
    // exact count/find while the workers race the queries on installs.
    let bg = Store::new(fm(), pooled_opts(RebuildMode::Background));
    let mut bg_reference = Reference::new(fm(), DynOptions::default(), RebuildMode::Background);
    for chunk in docs.chunks(24) {
        bg.insert_batch(chunk).unwrap();
        for (id, bytes) in chunk {
            bg_reference.insert(*id, bytes);
        }
        assert_store_matches(&bg, &bg_reference, &patterns[..3], "pooled mid-insert");
    }
    assert_store_matches(&bg, &bg_reference, &patterns, "pooled after inserts");
}

/// Dropping the store while other threads still hold clones and are
/// mid-query must tear the pool down cleanly: queued jobs finish, the
/// workers observe their closed queues, and every join succeeds (a hang
/// here fails the suite's timeout; a worker panic aborts the drop).
#[test]
fn pool_drop_with_queries_in_flight() {
    let (docs, patterns) = workload();
    let patterns = Arc::new(patterns);
    let store = Arc::new(Store::new(fm(), pooled_opts(RebuildMode::Background)));
    for chunk in docs.chunks(64) {
        store.insert_batch(chunk).unwrap();
    }
    let queries = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let store = Arc::clone(&store);
        let queries = Arc::clone(&queries);
        let patterns = Arc::clone(&patterns);
        handles.push(std::thread::spawn(move || {
            for round in 0..30 {
                let pattern = &patterns[(t + round) % patterns.len()];
                std::hint::black_box(store.count(pattern));
                std::hint::black_box(store.find_limit(pattern, 3));
                queries.fetch_add(1, Ordering::Relaxed);
            }
            // The last finisher drops the store (and joins the pool) here.
        }));
    }
    // Main gives up its handle while readers are still querying.
    drop(store);
    for handle in handles {
        handle.join().expect("reader thread panicked");
    }
    assert_eq!(queries.load(Ordering::Relaxed), 4 * 30);
}

/// Writer-panic containment under the view-published read path: a writer
/// panic poisons one shard's lock, but readers never touch that lock —
/// every query keeps answering from the shard's last published view.
/// Writes to the poisoned shard are refused with a typed
/// [`ShardPoisoned`] error (not a cascading panic), other shards keep
/// accepting writes, the workers all survive, and `flush` skips the
/// poisoned shard instead of panicking.
#[test]
fn poisoned_writer_keeps_reads_serving_last_view() {
    let store = Store::new(fm(), pooled_opts(RebuildMode::Inline));
    for id in 0..32u64 {
        store
            .insert(id, format!("containment doc {id}").as_bytes())
            .unwrap();
    }
    let count_before = store.count(b"containment");
    assert_eq!(count_before, 32);
    let hits_before = store.find(b"containment");
    let poisoned_shard = store.shard_of(0);
    // A healthy document routed to any other shard.
    let healthy = (1..32u64)
        .find(|&id| store.shard_of(id) != poisoned_shard)
        .unwrap();

    // Poison: duplicate insert panics while the shard's write guard is
    // held, poisoning that one RwLock. The guard's Drop sees the unwind
    // and publishes nothing, so the shard's view stays at the last good
    // state.
    let write_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = store.insert(0, b"duplicate");
    }))
    .expect_err("duplicate insert must panic");
    let msg = panic_message(write_panic.as_ref());
    assert!(msg.contains("already present"), "unexpected panic: {msg}");

    // The regression this test pins down: fan-out queries used to
    // `.expect("shard lock poisoned")`-panic store-wide. Now `find`
    // answers exactly from the last published views, repeatedly.
    for attempt in 0..2 {
        assert_eq!(
            store.count(b"containment"),
            count_before,
            "attempt {attempt}: reads must keep serving the last view"
        );
        assert_eq!(store.find(b"containment"), hits_before);
    }
    assert!(store.contains(0), "poisoned shard still serves point reads");
    assert!(store.extract(0, 0, 11).is_some());

    // Writes to the poisoned shard fail fast with the typed error.
    let mut same = 1_000u64;
    while store.shard_of(same) != poisoned_shard {
        same += 1;
    }
    assert_eq!(
        store.insert(same, b"refused"),
        Err(ShardPoisoned {
            shard: poisoned_shard
        })
    );
    assert_eq!(
        store.delete(0),
        Err(ShardPoisoned {
            shard: poisoned_shard
        })
    );

    // Every other shard keeps accepting writes.
    assert!(store.contains(healthy));
    let mut fresh = 2_000u64;
    while store.shard_of(fresh) == poisoned_shard {
        fresh += 1;
    }
    store
        .insert(fresh, b"containment doc inserted after the poisoning")
        .unwrap();
    assert!(store.contains(fresh));
    assert_eq!(store.count(b"containment"), count_before + 1);
    // Workers are all still alive (containment, not crash-and-respawn),
    // and flush quiesces the healthy shards without panicking.
    assert_eq!(store.worker_threads(), 4);
    store.flush();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Regression for the `flush` contract: with readers hammering the
/// worker queues from other threads, `flush` must still return (drain
/// the queues without deadlocking against them) and leave the store
/// settled — zero pending rebuild jobs — every time.
#[test]
fn flush_drains_request_queues_under_concurrent_readers() {
    let (docs, patterns) = workload();
    let store = Store::new(fm(), pooled_opts(RebuildMode::Background));
    for chunk in docs.chunks(32) {
        store.insert_batch(chunk).unwrap();
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    for pattern in &patterns {
                        std::hint::black_box(store.count(pattern));
                    }
                }
            });
        }
        for _ in 0..5 {
            store.flush();
            assert_eq!(
                store.pending_background_jobs(),
                0,
                "flush must leave no rebuild jobs in flight"
            );
        }
        stop.store(true, Ordering::Release);
    });
    // Queues empty once the readers are gone and the last flush settled.
    assert_eq!(store.stats().queued_requests(), 0);
}

// ----------------------------------------------------------------------
// Epoch-published views (lock-free read path)
// ----------------------------------------------------------------------

/// The headline acceptance criterion: queries execute without acquiring
/// the shard `RwLock`. Proven directly — this thread holds a shard's
/// write lock while a full fan-out `find` (which includes that shard)
/// completes with exact answers. Under the old lock-based read path this
/// deadlocks; under view publication the workers answer from the last
/// published views.
#[test]
fn find_completes_while_shard_write_lock_is_held() {
    let (docs, patterns) = workload();
    let store = Store::new(fm(), pooled_opts(RebuildMode::Inline));
    for chunk in docs.chunks(64) {
        store.insert_batch(chunk).unwrap();
    }
    store.flush();
    let want: Vec<_> = patterns.iter().map(|p| store.find(p)).collect();

    for shard in 0..store.num_shards() {
        let guard = store.lock_shard(shard);
        for (pattern, want) in patterns.iter().zip(&want) {
            assert_eq!(
                &store.find(pattern),
                want,
                "find must complete exactly while shard {shard} is write-locked"
            );
            assert_eq!(store.count(pattern), want.len());
        }
        drop(guard);
    }
}

/// Deterministic interleaving of view install vs a pinned reader: a
/// loaded view is an immutable snapshot — later writes never mutate it
/// ("old"), a reload observes them ("new"), and there is no third,
/// torn possibility. View epochs increase strictly across installs.
#[test]
fn pinned_view_is_immutable_and_epochs_increase() {
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 1,
            index: DynOptions::default(),
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Manual,
            fan_out: FanOutPolicy::ScopedSpawn,
            ..StoreOptions::default()
        },
    );
    store.insert(1, b"pinned alpha").unwrap();
    let old = store.shard_view(0);
    let old_epoch = old.epoch();
    assert_eq!(old.count(b"alpha"), 1);

    // Interleave three installs (insert, insert, delete) against the
    // pinned view: it must answer from its snapshot throughout.
    store.insert(2, b"pinned beta").unwrap();
    assert_eq!(old.count(b"pinned"), 1, "pinned view never sees the insert");
    store.insert(3, b"pinned gamma").unwrap();
    store.delete(1).unwrap();
    assert_eq!(old.count(b"alpha"), 1, "pinned view never sees the delete");
    assert_eq!(old.num_docs(), 1);

    // A fresh load observes everything, under a strictly larger epoch.
    let new = store.shard_view(0);
    assert!(
        new.epoch() > old_epoch,
        "epochs must increase: {} -> {}",
        old_epoch,
        new.epoch()
    );
    assert_eq!(new.count(b"alpha"), 0);
    assert_eq!(new.count(b"pinned"), 2);
    assert_eq!(new.num_docs(), 2);
}

/// Concurrent readers racing a writer can never observe a torn view.
/// Every inserted document contains both the token `alphaq` and the
/// token `betaq`, so *within any single view* the two counts are equal —
/// a reader that caught a half-installed state would see them differ.
/// Per-reader epoch monotonicity is asserted on the same loads.
#[test]
fn concurrent_view_loads_are_never_torn() {
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 1,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Manual,
            fan_out: FanOutPolicy::ScopedSpawn,
            ..StoreOptions::default()
        },
    );
    let writer_done = AtomicBool::new(false);
    let loads = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut last_epoch = 0u64;
                let mut last_docs = 0usize;
                while !writer_done.load(Ordering::Acquire) {
                    let view = store.shard_view(0);
                    assert_eq!(
                        view.count(b"alphaq"),
                        view.count(b"betaq"),
                        "a single view must be internally consistent"
                    );
                    assert!(
                        view.epoch() >= last_epoch,
                        "epochs must be monotone per reader: {} then {}",
                        last_epoch,
                        view.epoch()
                    );
                    // Monotone insert-only workload: doc counts can only
                    // grow along a reader's view sequence.
                    assert!(view.num_docs() >= last_docs);
                    last_epoch = view.epoch();
                    last_docs = view.num_docs();
                    loads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for id in 0..300u64 {
            store
                .insert(id, format!("alphaq {id} betaq").as_bytes())
                .unwrap();
            if id % 16 == 0 {
                store.maintain();
            }
        }
        store.finish_background_work();
        writer_done.store(true, Ordering::Release);
    });
    assert!(loads.load(Ordering::Relaxed) > 0, "readers must have raced");
    let view = store.shard_view(0);
    assert_eq!(view.count(b"alphaq"), 300);
    assert_eq!(view.num_docs(), 300);
}

/// Long read/write soak over the epoch-published views: several readers
/// hammer views (consistency + epoch monotonicity per load) while a
/// writer churns inserts and deletes for a few seconds. Run with
/// `cargo test -- --ignored read_write_soak`.
#[test]
#[ignore = "multi-second soak; run explicitly"]
fn read_write_soak() {
    let store = Store::new(fm(), pooled_opts(RebuildMode::Background));
    let writer_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            scope.spawn(|| {
                let mut last = vec![0u64; store.num_shards()];
                while !writer_done.load(Ordering::Acquire) {
                    for (shard, last_epoch) in last.iter_mut().enumerate() {
                        let view = store.shard_view(shard);
                        assert_eq!(view.count(b"soakalpha"), view.count(b"soakbeta"));
                        assert!(view.epoch() >= *last_epoch, "epoch regressed");
                        *last_epoch = view.epoch();
                    }
                    std::hint::black_box(store.find_limit(b"soakalpha", 7));
                }
            });
            let _ = t;
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut id = 0u64;
        while std::time::Instant::now() < deadline {
            store
                .insert(id, format!("soakalpha {id} soakbeta").as_bytes())
                .unwrap();
            if id >= 64 && id.is_multiple_of(4) {
                store.delete(id - 64).unwrap();
            }
            id += 1;
        }
        writer_done.store(true, Ordering::Release);
    });
    store.flush();
    let alive = store.num_docs();
    assert_eq!(store.count(b"soakalpha"), alive);
    assert_eq!(store.count(b"soakbeta"), alive);
}

// ----------------------------------------------------------------------
// Background snapshots (SnapshotMode::Background)
// ----------------------------------------------------------------------

struct SnapshotTempDir(std::path::PathBuf);

impl SnapshotTempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "dyndex-store-concurrent-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        SnapshotTempDir(p)
    }
}

impl Drop for SnapshotTempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Acceptance criterion for the non-blocking snapshot pipeline: a
/// background-mode snapshot never holds more than one shard's write
/// lock at a time. Proven deterministically by wedging one shard's
/// write lock open: the snapshot must park on that shard with every
/// *other* shard unlocked and serviceable — under the old
/// stop-the-world path (`lock_all_shards` in shard order), the same
/// scenario holds shards 0..k locked while waiting on shard k+1, and
/// the single-shard operations below would hang.
#[test]
fn background_snapshot_holds_at_most_one_shard_lock() {
    let (docs, patterns) = workload();
    let store = Arc::new(Store::new(fm(), pooled_opts(RebuildMode::Inline)));
    for chunk in docs.chunks(64) {
        store.insert_batch(chunk).unwrap();
    }
    store.flush();
    let dir = SnapshotTempDir::new("one-lock");
    let doc_in = |s: usize| {
        docs.iter()
            .map(|(id, _)| *id)
            .find(|&id| store.shard_of(id) == s)
    };

    let blocked_shard = 2;
    let guard = store.lock_shard(blocked_shard);
    let handle = {
        let store = Arc::clone(&store);
        let dir = dir.0.clone();
        std::thread::spawn(move || store.snapshot(&dir).expect("background snapshot"))
    };
    // Let the snapshot freeze shards 0 and 1 and park on the held shard.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !handle.is_finished(),
        "snapshot cannot complete while shard {blocked_shard} is write-locked"
    );
    // Every other shard must be immediately serviceable: already-frozen
    // shards were unlocked again before the snapshot moved on.
    for s in (0..store.num_shards()).filter(|&s| s != blocked_shard) {
        let id = doc_in(s).expect("every shard is populated");
        assert!(store.contains(id), "shard {s} must answer mid-snapshot");
        assert!(store.extract(id, 0, 8).is_some());
    }
    drop(guard);
    let stats = handle.join().expect("snapshot thread");
    assert_eq!(stats.shards, store.num_shards());

    // The committed snapshot restores to the exact frozen state.
    let restored = Store::restore(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Manual,
            ..RestoreOptions::default()
        },
    )
    .expect("restore");
    for pattern in &patterns {
        assert_eq!(restored.count(pattern), store.count(pattern));
        assert_eq!(restored.find(pattern), store.find(pattern));
    }
}

/// Queries keep completing while a background snapshot of a populated
/// store is mid-serialization. The worker queues are wedged with sleep
/// jobs first, so the snapshot's serialization provably overlaps the
/// query window (`snapshot_in_progress` stays up for the duration) —
/// no all-shards stall, no deadlock.
#[test]
fn queries_complete_while_background_snapshot_serializes() {
    let (docs, patterns) = workload();
    let store = Arc::new(Store::new(fm(), pooled_opts(RebuildMode::Inline)));
    for chunk in docs.chunks(64) {
        store.insert_batch(chunk).unwrap();
    }
    store.flush();
    let want: Vec<usize> = patterns.iter().map(|p| store.count(p)).collect();
    let dir = SnapshotTempDir::new("no-stall");

    // Wedge every worker queue: the snapshot's per-level serialization
    // jobs queue behind these, keeping the snapshot observably
    // in-progress while the queries below run.
    for s in 0..store.num_shards() {
        store.submit_background_job(
            s,
            Box::new(|| std::thread::sleep(Duration::from_millis(100))),
        );
    }
    let handle = {
        let store = Arc::clone(&store);
        let dir = dir.0.clone();
        std::thread::spawn(move || store.snapshot(&dir).expect("background snapshot"))
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !store.snapshot_in_progress()
        && !handle.is_finished()
        && std::time::Instant::now() < deadline
    {
        std::thread::yield_now();
    }
    let mut queries_during = 0usize;
    while store.snapshot_in_progress() && std::time::Instant::now() < deadline {
        let (id, bytes) = &docs[queries_during % docs.len()];
        assert!(store.contains(*id), "query must not stall mid-snapshot");
        assert_eq!(
            store.extract(*id, 0, 4).as_deref(),
            Some(&bytes[..4.min(bytes.len())]),
            "exact answers mid-snapshot"
        );
        queries_during += 1;
    }
    let stats = handle.join().expect("snapshot thread");
    assert!(
        queries_during > 0,
        "queries must complete while serialization is in flight"
    );
    assert!(!store.snapshot_in_progress(), "gauge resets after commit");
    assert!(!store.stats().snapshot_in_progress);
    assert_eq!(stats.shards, store.num_shards());

    // Fan-out queries that queued behind the snapshot's serialization
    // jobs still answer exactly.
    for (pattern, want) in patterns.iter().zip(want) {
        assert_eq!(store.count(pattern), want, "post-snapshot fan-out");
    }
}
