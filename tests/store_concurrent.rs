//! Integration: the sharded store vs one unsharded `Transform2Index` on
//! the deterministic `DEFAULT_SEED` workload — byte-identical `count` /
//! `find` answers while background maintenance jobs are in flight — plus
//! genuinely concurrent readers and writers.

use dyndex::prelude::*;
use dyndex_bench::workloads::{markov_text, planted_patterns, rng, split_documents, DEFAULT_SEED};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

type Store = ShardedStore<FmIndexCompressed>;
type Reference = Transform2Index<FmIndexCompressed>;

fn fm() -> FmConfig {
    FmConfig { sample_rate: 8 }
}

type Docs = Vec<(u64, Vec<u8>)>;

/// The acceptance workload: seeded Markov text split into documents, with
/// planted patterns (every query has hits).
fn workload() -> (Docs, Vec<Vec<u8>>) {
    let mut r = rng(DEFAULT_SEED);
    let text = markov_text(&mut r, 40_000, 26, 2);
    let docs = split_documents(&mut r, &text, 64, 256, 0);
    let mut patterns = planted_patterns(&mut r, &docs, 6, 12);
    patterns.push(b"zzzzzzzz".to_vec()); // absent pattern
    (docs, patterns)
}

fn assert_store_matches(store: &Store, reference: &Reference, patterns: &[Vec<u8>], at: &str) {
    for pattern in patterns {
        assert_eq!(
            store.count(pattern),
            reference.count(pattern),
            "count mismatch {at}, pattern {:?}",
            String::from_utf8_lossy(pattern)
        );
        let sharded = store.find(pattern);
        let mut single = reference.find(pattern);
        single.sort();
        assert_eq!(
            sharded,
            single,
            "find mismatch {at}, pattern {:?}",
            String::from_utf8_lossy(pattern)
        );
    }
}

/// Acceptance criterion: a 4-shard store answers byte-identically to an
/// unsharded index on the `DEFAULT_SEED` workload, with queries served
/// while background rebuild jobs are in flight.
#[test]
fn sharded_matches_unsharded_with_jobs_in_flight() {
    let (docs, patterns) = workload();
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Manual,
        },
    );
    let mut reference = Reference::new(fm(), DynOptions::default(), RebuildMode::Background);

    let mut saw_pending = 0usize;
    for chunk in docs.chunks(24) {
        store.insert_batch(chunk);
        for (id, bytes) in chunk {
            reference.insert(*id, bytes);
        }
        // Query mid-stream: background jobs from the batch are typically
        // still building; answers must already be exact.
        saw_pending += store.pending_background_jobs();
        assert_store_matches(&store, &reference, &patterns[..3], "mid-insert");
    }
    assert!(
        saw_pending > 0,
        "workload must actually exercise in-flight background jobs"
    );
    assert_store_matches(&store, &reference, &patterns, "after inserts");
    assert_eq!(store.num_docs(), docs.len());
    assert_eq!(store.symbol_count(), reference.symbol_count());

    // Delete a third of the documents through the batch path.
    let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 3 == 0).collect();
    assert_eq!(store.delete_batch(&doomed), doomed.len());
    for id in &doomed {
        reference.delete(*id);
    }
    assert_store_matches(&store, &reference, &patterns, "after deletes");

    // Drain all maintenance on both sides; answers must not change.
    store.finish_background_work();
    reference.finish_background_work();
    assert_eq!(store.pending_background_jobs(), 0);
    assert_store_matches(&store, &reference, &patterns, "after drain");

    let stats = store.stats();
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.total_docs(), docs.len() - doomed.len());
    assert_eq!(stats.total_symbols(), store.symbol_count());
    assert_eq!(stats.pending_jobs(), 0);
}

/// Readers on their own threads get exact answers while a writer thread
/// streams inserts/deletes and the periodic scheduler installs rebuilds.
#[test]
fn concurrent_readers_during_writes_and_maintenance() {
    let (docs, patterns) = workload();
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
        },
    );
    let total_occurrences: usize = patterns
        .iter()
        .map(|p| {
            docs.iter()
                .map(|(_, d)| d.windows(p.len()).filter(|w| *w == p.as_slice()).count())
                .sum::<usize>()
        })
        .sum();

    let writer_done = AtomicBool::new(false);
    let reader_queries = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                while !writer_done.load(Ordering::Acquire) {
                    for pattern in &patterns {
                        // Monotone insert-only stream: every snapshot is
                        // bounded by the final corpus total. (count and
                        // find_limit are *separate* snapshots — the writer
                        // may land documents between them.)
                        let n = store.count(pattern);
                        assert!(n <= total_occurrences);
                        let hits = store.find_limit(pattern, 5);
                        assert!(hits.len() <= 5);
                        assert!(hits.windows(2).all(|w| w[0] < w[1]), "sorted merge");
                        reader_queries.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for chunk in docs.chunks(16) {
            store.insert_batch(chunk);
        }
        writer_done.store(true, Ordering::Release);
    });
    assert!(
        reader_queries.load(Ordering::Relaxed) > 0,
        "readers must have run concurrently with the writer"
    );

    // Settle and verify against the unsharded reference.
    store.finish_background_work();
    let mut reference = Reference::new(fm(), DynOptions::default(), RebuildMode::Inline);
    for (id, bytes) in &docs {
        reference.insert(*id, bytes);
    }
    reference.finish_background_work();
    assert_store_matches(&store, &reference, &patterns, "after concurrent run");
    assert_eq!(store.num_docs(), docs.len());
}
