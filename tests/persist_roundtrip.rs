//! Acceptance: a `ShardedStore` populated from the deterministic
//! `DEFAULT_SEED` workload, snapshotted mid-workload (so a write-ahead
//! log tail of inserts *and* deletes exists past the snapshot), then
//! restored into a fresh store, answers `count` / `find` / `find_limit`
//! / `extract` **byte-identically** to the original live store.

use dyndex::prelude::*;
use dyndex_bench::workloads::{markov_text, planted_patterns, rng, split_documents, DEFAULT_SEED};
use std::path::PathBuf;
use std::time::Duration;

type Durable = DurableStore<FmIndexCompressed>;
type Store = ShardedStore<FmIndexCompressed>;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "dyndex-persist-accept-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

type Docs = Vec<(u64, Vec<u8>)>;

/// The seeded acceptance workload (same generator pipeline as the store
/// concurrency suite): Markov text split into documents, with planted
/// patterns so every query has hits.
fn workload() -> (Docs, Vec<Vec<u8>>) {
    let mut r = rng(DEFAULT_SEED);
    let text = markov_text(&mut r, 40_000, 26, 2);
    let docs = split_documents(&mut r, &text, 64, 256, 0);
    let mut patterns = planted_patterns(&mut r, &docs, 6, 12);
    patterns.push(b"zzzzzzzz".to_vec()); // absent pattern
    (docs, patterns)
}

fn fm() -> FmConfig {
    FmConfig { sample_rate: 8 }
}

/// Deterministic mode: inline rebuilds + manual maintenance make the
/// live store's structure layout a pure function of its op sequence, so
/// even truncated (`find_limit`) answers must match byte-for-byte.
fn deterministic_opts(num_shards: usize) -> StoreOptions {
    StoreOptions {
        num_shards,
        index: DynOptions::default(),
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..StoreOptions::default()
    }
}

fn deterministic_restore() -> RestoreOptions {
    RestoreOptions {
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..RestoreOptions::default()
    }
}

fn assert_byte_identical(live: &Store, restored: &Store, patterns: &[Vec<u8>], max_id: u64) {
    assert_eq!(restored.num_docs(), live.num_docs());
    assert_eq!(restored.symbol_count(), live.symbol_count());
    for pattern in patterns {
        let tag = String::from_utf8_lossy(pattern).into_owned();
        assert_eq!(
            restored.count(pattern),
            live.count(pattern),
            "count {tag:?}"
        );
        assert_eq!(restored.find(pattern), live.find(pattern), "find {tag:?}");
        for limit in [0usize, 1, 5, 17, 1000, usize::MAX] {
            assert_eq!(
                restored.find_limit(pattern, limit),
                live.find_limit(pattern, limit),
                "find_limit({limit}) {tag:?}"
            );
        }
    }
    for id in 0..max_id {
        assert_eq!(restored.contains(id), live.contains(id), "contains {id}");
        assert_eq!(
            restored.extract(id, 0, 300),
            live.extract(id, 0, 300),
            "extract {id}"
        );
        assert_eq!(restored.extract(id, 13, 40), live.extract(id, 13, 40));
    }
}

/// The headline acceptance scenario: populate → snapshot mid-workload →
/// keep mutating (WAL tail) → restore fresh → byte-identical answers.
#[test]
fn snapshot_with_wal_tail_restores_byte_identical() {
    let (docs, patterns) = workload();
    let dir = TempDir::new("wal-tail");
    let live = Durable::create(&dir.0, fm(), deterministic_opts(4)).expect("create");

    // First half of the workload, then a mid-workload snapshot.
    let half = docs.len() / 2;
    for chunk in docs[..half].chunks(32) {
        live.insert_batch(chunk).expect("insert");
    }
    let stats = live.snapshot().expect("mid-workload snapshot");
    assert_eq!(stats.shards, 4);
    assert!(stats.bytes_on_disk > 0);

    // The tail rides only in the write-ahead logs: the rest of the
    // inserts plus a scattered third of deletes.
    for chunk in docs[half..].chunks(32) {
        live.insert_batch(chunk).expect("insert tail");
    }
    let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 3 == 0).collect();
    let removed = live.delete_batch(&doomed).expect("delete tail");
    assert_eq!(removed, doomed.len());
    live.flush();

    // Restore purely from disk into a fresh store.
    let restored = Durable::open(&dir.0, deterministic_restore()).expect("open");
    assert_byte_identical(live.store(), restored.store(), &patterns, docs.len() as u64);

    // The restored store keeps working as a normal dynamic store.
    restored
        .insert(1_000_000, b"post restore insert")
        .expect("insert after restore");
    assert_eq!(restored.count(b"post restore"), 1);
    let line = restored.stats().to_string();
    assert!(
        line.contains("last snapshot"),
        "stats dashboard must show snapshot bytes: {line}"
    );
}

/// Plain `ShardedStore::snapshot` / `restore` (no WAL layer) with
/// background rebuilds: quiesce via `flush`, snapshot, restore, and
/// compare the full query surface.
#[test]
fn plain_store_snapshot_under_background_mode() {
    let (docs, patterns) = workload();
    let store = Store::new(
        fm(),
        StoreOptions {
            num_shards: 3,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Manual,
            ..StoreOptions::default()
        },
    );
    for chunk in docs.chunks(48) {
        store.insert_batch(chunk).unwrap();
    }
    let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 5 == 2).collect();
    store.delete_batch(&doomed).unwrap();

    let dir = TempDir::new("plain");
    // snapshot() quiesces internally; no explicit flush needed.
    let stats = store.snapshot(&dir.0).expect("snapshot");
    assert_eq!(stats.shards, 3);
    let restored = Store::restore(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Manual,
            ..RestoreOptions::default()
        },
    )
    .expect("restore");

    // The snapshot captured the flushed point-in-time state; the live
    // store was not mutated afterwards, so answers must be identical
    // (find is fully sorted, so set-identical = byte-identical; the
    // restored layout mirrors the frozen one exactly, so find_limit
    // matches too).
    assert_byte_identical(&store, &restored, &patterns, docs.len() as u64);
}

// ----------------------------------------------------------------------
// Worker-pool re-creation through the restore paths
// ----------------------------------------------------------------------

/// `StorePersist::restore` must re-create the resident worker pool: the
/// restored store runs one worker per shard, serves pooled fan-out, and
/// its workers install background rebuilds with no manual maintenance
/// calls at all.
#[test]
fn restore_recreates_worker_pool() {
    let (docs, patterns) = workload();
    let dir = TempDir::new("pool-restore");
    let store = Store::new(fm(), deterministic_opts(3));
    for chunk in docs.chunks(48) {
        store.insert_batch(chunk).unwrap();
    }
    store.snapshot(&dir.0).expect("snapshot");
    assert_eq!(store.worker_threads(), 0, "Manual source has no workers");

    let restored = Store::restore(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
            fan_out: FanOutPolicy::Pooled,
            ..RestoreOptions::default()
        },
    )
    .expect("restore");
    assert_eq!(
        restored.worker_threads(),
        3,
        "one worker per restored shard"
    );
    assert_eq!(restored.fan_out_policy(), FanOutPolicy::Pooled);
    for pattern in &patterns {
        assert_eq!(restored.count(pattern), store.count(pattern));
        assert_eq!(restored.find(pattern), store.find(pattern));
    }

    // New writes spawn background rebuilds; only the restored workers
    // can install them (no maintain()/finish_background_work() here).
    let extra: Vec<(u64, Vec<u8>)> = (0..40u64)
        .map(|i| (5_000_000 + i, format!("post restore doc {i}").into_bytes()))
        .collect();
    restored.insert_batch(&extra).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while restored.pending_background_jobs() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        restored.pending_background_jobs(),
        0,
        "restored workers must drain rebuilds on their own"
    );
    assert_eq!(restored.count(b"post restore"), 40);
}

/// `DurableStore::open` must hand back a store whose pool is live again:
/// pooled queries, per-shard workers, and self-draining maintenance,
/// with the WAL tail replayed underneath.
#[test]
fn open_recreates_worker_pool() {
    let (docs, patterns) = workload();
    let dir = TempDir::new("pool-open");
    let live = Durable::create(
        &dir.0,
        fm(),
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
            fan_out: FanOutPolicy::Pooled,
            ..StoreOptions::default()
        },
    )
    .expect("create");
    let half = docs.len() / 2;
    for chunk in docs[..half].chunks(32) {
        live.insert_batch(chunk).expect("insert");
    }
    live.snapshot().expect("snapshot");
    for chunk in docs[half..].chunks(32) {
        live.insert_batch(chunk).expect("wal tail");
    }
    live.flush();
    let want: Vec<usize> = patterns.iter().map(|p| live.count(p)).collect();
    drop(live); // "crash": joins the old pool

    let reopened = Durable::open(
        &dir.0,
        RestoreOptions {
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
            fan_out: FanOutPolicy::Pooled,
            ..RestoreOptions::default()
        },
    )
    .expect("open");
    assert_eq!(reopened.store().worker_threads(), 4, "pool re-created");
    assert_eq!(reopened.store().fan_out_policy(), FanOutPolicy::Pooled);
    for (pattern, want) in patterns.iter().zip(want) {
        assert_eq!(reopened.count(pattern), want, "snapshot + WAL tail");
    }
    // The reopened workers drain new rebuild work unprompted.
    reopened
        .insert_batch(
            &(0..30u64)
                .map(|i| (6_000_000 + i, format!("after reopen {i}").into_bytes()))
                .collect::<Vec<_>>(),
        )
        .expect("insert after open");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while reopened.store().pending_background_jobs() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(reopened.store().pending_background_jobs(), 0);
    assert_eq!(reopened.count(b"after reopen"), 30);
    let line = reopened.stats().to_string();
    assert!(
        line.contains("queued"),
        "dashboard shows queue gauge: {line}"
    );
}

/// Acceptance criterion for delta snapshots: a second snapshot after
/// mutating only a minority of shards reuses the untouched shards'
/// committed level files — `bytes_reused > 0`, measurably fewer bytes
/// written than the first snapshot — and still restores byte-identically
/// on the `DEFAULT_SEED` workload. A third snapshot with *nothing*
/// changed reuses every level file, including across restore (the
/// restored store resumes the writer's epochs and identity).
#[test]
fn delta_snapshot_reuses_unchanged_levels() {
    let (docs, patterns) = workload();
    let dir = TempDir::new("delta");
    let store = Store::new(fm(), deterministic_opts(4));
    for chunk in docs.chunks(32) {
        store.insert_batch(chunk).unwrap();
    }
    store.flush();

    let first = store.snapshot(&dir.0).expect("first snapshot");
    assert_eq!(first.levels_reused, 0, "nothing to reuse on a fresh dir");
    assert!(
        first.levels_written > 0,
        "populated shards must have levels"
    );
    assert!(first.bytes_written > 0);
    assert_eq!(first.bytes_reused, 0);

    // Mutate only documents routed to shard 0 — a minority of shards.
    let shard0: Vec<u64> = (0..docs.len() as u64)
        .filter(|&id| store.shard_of(id) == 0)
        .take(8)
        .collect();
    assert!(!shard0.is_empty());
    assert_eq!(store.delete_batch(&shard0).unwrap(), shard0.len());
    store.flush();

    let second = store.snapshot(&dir.0).expect("second snapshot");
    assert_eq!(second.generation, first.generation + 1);
    assert!(
        second.bytes_reused > 0,
        "untouched shards' levels must be reused: {second}"
    );
    assert!(second.levels_reused > 0, "{second}");
    assert!(
        second.bytes_written < first.bytes_written,
        "delta snapshot must write measurably fewer bytes: \
         first wrote {}, second wrote {}",
        first.bytes_written,
        second.bytes_written
    );

    // Nothing changed since the second snapshot: every level is reused,
    // in stop-the-world mode too (delta is mode-independent).
    let third = store
        .snapshot_with(&dir.0, SnapshotMode::StopTheWorld)
        .expect("third snapshot");
    assert_eq!(third.levels_written, 0, "{third}");
    assert_eq!(
        third.levels_reused,
        second.levels_reused + second.levels_written
    );
    let line = third.to_string();
    assert!(line.contains("levels reused"), "Display: {line}");
    assert!(line.contains("delta savings"), "Display: {line}");

    // The delta-restored store answers byte-identically.
    let restored = Store::restore(&dir.0, deterministic_restore()).expect("restore");
    assert_byte_identical(&store, &restored, &patterns, docs.len() as u64);

    // A restored store descends from the committed snapshot: its next
    // snapshot still reuses every unchanged level file.
    let fourth = restored.snapshot(&dir.0).expect("snapshot after restore");
    assert_eq!(
        fourth.levels_written, 0,
        "restore must preserve epochs + snapshot lineage: {fourth}"
    );
    assert!(fourth.bytes_reused > 0);

    // The original store's state now *forks* the directory's history
    // (the restored clone committed generation 4 after it): its next
    // snapshot must detect the fork and refuse to reuse, falling back
    // to a full write rather than pairing its epochs with the clone's
    // files.
    let fifth = store.snapshot(&dir.0).expect("snapshot after fork");
    assert_eq!(fifth.levels_reused, 0, "fork must disable reuse: {fifth}");
    let reread = Store::restore(&dir.0, deterministic_restore()).expect("restore after fork");
    assert_byte_identical(&store, &reread, &patterns, docs.len() as u64);
}

/// Telemetry survives restarts when the registry does: a store restored
/// with `Telemetry::Shared` over its predecessor's registry accumulates
/// into the same metric series — counters continue rather than reset —
/// and the WAL histograms keep recording on the reopened logs.
#[test]
fn restored_store_records_into_the_same_registry() {
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let shared = || Telemetry::Shared(std::sync::Arc::clone(&registry));
    let dir = TempDir::new("shared-registry");

    let live = Durable::create(
        &dir.0,
        fm(),
        StoreOptions {
            telemetry: shared(),
            ..deterministic_opts(2)
        },
    )
    .expect("create");
    live.insert(1, b"first life one").expect("insert");
    live.insert(2, b"first life two").expect("insert");
    assert_eq!(live.count(b"first life"), 2);
    live.snapshot().expect("snapshot");
    drop(live);

    let inserted = |r: &MetricsRegistry| {
        r.find_histogram("dyndex_store_insert_duration")
            .expect("registered")
            .snapshot()
            .count()
    };
    let first_life_inserts = inserted(&registry);
    assert_eq!(first_life_inserts, 2);

    let reopened = Durable::open(
        &dir.0,
        RestoreOptions {
            telemetry: shared(),
            ..deterministic_restore()
        },
    )
    .expect("open");
    assert!(
        std::sync::Arc::ptr_eq(&reopened.metrics().expect("telemetry on"), &registry),
        "restored store must hand back the registry it was given"
    );
    reopened.insert(3, b"second life three").expect("insert");
    assert_eq!(
        inserted(&registry),
        first_life_inserts + 1,
        "the same series keeps counting across the restart"
    );
    assert_eq!(reopened.count(b"second life"), 1);

    // WAL fsync latencies recorded on the reopened logs feed the
    // dashboard p99.
    reopened.sync_wal().expect("sync");
    let stats = reopened.stats();
    assert!(stats.wal_fsync_p99.is_some(), "fsyncs were recorded");
    let line = stats.to_string();
    assert!(line.contains("p99 fsync"), "{line}");

    // The exposition carries both store-side and WAL-side series.
    let text = reopened.render_metrics().expect("telemetry on");
    assert!(text.contains("dyndex_store_docs_inserted 3"), "{text}");
    assert!(text.contains("dyndex_wal_fsync_duration"), "{text}");
}
