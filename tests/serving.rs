//! Acceptance for the serving layer, over raw `TcpStream`s and the
//! typed [`Client`]: remote answers byte-identical to local ones on the
//! `DEFAULT_SEED` workload, chaos clients (mid-frame hangups,
//! slow-loris trickles, garbage) never panic the server, backpressure
//! sheds with typed `Busy` while healthy shards keep serving, and a
//! poisoned shard surfaces as a typed wire error without taking the
//! server down.

use dyndex::prelude::*;
use dyndex::serve::proto::{self, DEFAULT_MAX_FRAME};
use dyndex::serve::{RemoteHealth, Request, Response, WireError};
use dyndex_bench::workloads::{markov_text, planted_patterns, rng, split_documents, DEFAULT_SEED};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Store = ShardedStore<FmIndexCompressed>;
type Srv = Server<FmIndexCompressed>;

const SHARDS: usize = 4;

fn fm() -> FmConfig {
    FmConfig { sample_rate: 8 }
}

/// Pooled store options with an hour-long maintenance tick: workers wake
/// on job arrival, but no periodic tick mutates state behind the test's
/// assertions.
fn pooled_opts() -> StoreOptions {
    StoreOptions {
        num_shards: SHARDS,
        index: DynOptions::default(),
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Periodic(Duration::from_secs(3600)),
        fan_out: FanOutPolicy::Pooled,
        telemetry: Telemetry::Enabled,
        ..StoreOptions::default()
    }
}

/// A served store on an ephemeral port.
fn server_with(serve: ServeOptions) -> Srv {
    Server::over(Arc::new(Store::new(fm(), pooled_opts())), serve).expect("bind ephemeral port")
}

fn server() -> Srv {
    server_with(ServeOptions::default())
}

type Docs = Vec<(u64, Vec<u8>)>;

/// The seeded acceptance workload shared with the persist/store suites.
fn workload() -> (Docs, Vec<Vec<u8>>) {
    let mut r = rng(DEFAULT_SEED);
    let text = markov_text(&mut r, 40_000, 26, 2);
    let docs = split_documents(&mut r, &text, 64, 256, 0);
    let mut patterns = planted_patterns(&mut r, &docs, 6, 12);
    patterns.push(b"zzzzzzzz".to_vec()); // absent pattern
    (docs, patterns)
}

// ----------------------------------------------------------------------
// Acceptance: remote answers are byte-identical to local ones.
// ----------------------------------------------------------------------

#[test]
fn remote_answers_match_local_byte_identically() {
    let (docs, patterns) = workload();
    let server = server();
    let mut client = Client::connect(server.addr()).expect("connect");

    // Populate over the wire; the local handle sees every document.
    for (id, bytes) in &docs {
        client.insert(*id, bytes).unwrap();
    }
    assert_eq!(server.stats().total_docs(), docs.len());

    for pattern in &patterns {
        // count
        assert_eq!(
            client.count(pattern).unwrap(),
            server.count(pattern) as u64,
            "count({pattern:?})"
        );
        // find: compare the *encoded* payloads, not just the values —
        // the acceptance bar is byte-identity on the wire.
        let remote = client.find(pattern).unwrap();
        let local: Vec<(u64, u64)> = server
            .find(pattern)
            .into_iter()
            .map(|hit| (hit.doc, hit.offset as u64))
            .collect();
        let mut remote_bytes = Vec::new();
        let mut local_bytes = Vec::new();
        Response::Occurrences(remote.clone())
            .write_frame(&mut remote_bytes, DEFAULT_MAX_FRAME)
            .unwrap();
        Response::Occurrences(local.clone())
            .write_frame(&mut local_bytes, DEFAULT_MAX_FRAME)
            .unwrap();
        assert_eq!(remote_bytes, local_bytes, "find({pattern:?})");
        // find_limit at a few truncation points
        for limit in [0u64, 1, 5] {
            let remote = client.find_limit(pattern, limit).unwrap();
            let local: Vec<(u64, u64)> = server
                .find_limit(pattern, limit as usize)
                .into_iter()
                .map(|hit| (hit.doc, hit.offset as u64))
                .collect();
            assert_eq!(remote, local, "find_limit({pattern:?}, {limit})");
        }
    }

    // Deletes round-trip the removed bytes.
    let (victim, victim_bytes) = docs[7].clone();
    assert_eq!(client.delete(victim).unwrap(), Some(victim_bytes));
    assert_eq!(client.delete(victim).unwrap(), None);
    assert!(!server.contains(victim));

    // Stats and health agree with the local store.
    let stats = client.stats().unwrap();
    assert_eq!(stats.docs as usize, docs.len() - 1);
    assert_eq!(stats.shards as usize, SHARDS);
    let (status, detail) = client.health().unwrap();
    assert_eq!(status, RemoteHealth::Ok);
    assert_eq!(detail, "ok");
}

// ----------------------------------------------------------------------
// Chaos: hostile and unlucky clients never take the server down.
// ----------------------------------------------------------------------

/// A valid encoded Count request frame.
fn count_frame(pattern: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    Request::Count {
        pattern: pattern.to_vec(),
    }
    .write_frame(&mut wire, DEFAULT_MAX_FRAME)
    .unwrap();
    wire
}

/// Asserts the server still answers a well-formed client.
fn assert_still_serving(server: &Srv, expected: u64) {
    let mut client = Client::connect(server.addr()).expect("connect after chaos");
    assert_eq!(client.count(b"chaos").unwrap(), expected);
}

#[test]
fn mid_frame_disconnects_leave_the_server_serving() {
    let server = server();
    server.insert(1, b"chaos baseline document").unwrap();

    let frame = count_frame(b"chaos");
    // Cut a valid frame at several interesting points: mid-magic,
    // mid-header, exactly after the header, mid-payload, mid-CRC.
    for cut in [1, 3, 6, proto::HEADER_LEN, frame.len() - 6, frame.len() - 1] {
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.write_all(&frame[..cut]).unwrap();
        drop(conn); // hangup mid-frame
        assert_still_serving(&server, 1);
    }

    // Half-written request then hard hangup (RST via linger-less drop
    // is platform-dependent; a plain drop already covers FIN).
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(&frame[..proto::HEADER_LEN + 2]).unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    // The server answers the truncation with a typed error frame or a
    // clean close — never garbage.
    let mut reply = Vec::new();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = conn.read_to_end(&mut reply);
    if !reply.is_empty() {
        let (opcode, payload) = proto::read_frame(&mut reply.as_slice(), DEFAULT_MAX_FRAME)
            .expect("server reply frames")
            .expect("server reply frames");
        assert!(
            matches!(
                Response::decode(opcode, &payload),
                Ok(Response::Error(WireError::Malformed { .. }))
            ),
            "expected a typed malformed-error frame"
        );
    }
    assert_still_serving(&server, 1);
}

#[test]
fn garbage_and_foreign_protocols_get_typed_errors() {
    let server = server();
    server.insert(1, b"chaos baseline document").unwrap();

    // An HTTP client knocking on the wire port: bad magic, typed error
    // (or clean close), no panic.
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"GET / HTTP/1.1\r\nHost: wrong-port\r\n\r\n")
        .unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = Vec::new();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = conn.read_to_end(&mut reply);
    if !reply.is_empty() {
        let (opcode, payload) = proto::read_frame(&mut reply.as_slice(), DEFAULT_MAX_FRAME)
            .expect("typed reply")
            .expect("typed reply");
        assert!(matches!(
            Response::decode(opcode, &payload),
            Ok(Response::Error(WireError::Malformed { .. }))
        ));
    }
    assert_still_serving(&server, 1);

    // A checksummed frame whose payload does not decode: the connection
    // survives the typed error and serves the next request.
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, 0x02, b"too-short-for-a-u64", DEFAULT_MAX_FRAME).unwrap();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(&wire).unwrap();
    let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
    let (opcode, payload) = proto::read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("typed reply")
        .expect("typed reply");
    assert!(matches!(
        Response::decode(opcode, &payload),
        Ok(Response::Error(WireError::Malformed { .. }))
    ));
    // Same connection, now a valid request: still in sync.
    conn.write_all(&count_frame(b"chaos")).unwrap();
    let (opcode, payload) = proto::read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("second reply")
        .expect("second reply");
    assert_eq!(
        Response::decode(opcode, &payload).unwrap(),
        Response::Count(1)
    );
}

#[test]
fn slow_loris_frames_are_cut_off_while_others_serve() {
    let server = server_with(ServeOptions {
        frame_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    });
    server.insert(1, b"chaos baseline document").unwrap();

    let frame = count_frame(b"chaos");
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    let start = Instant::now();
    let mut cut_off = false;
    for (i, byte) in frame.iter().enumerate() {
        if loris.write_all(std::slice::from_ref(byte)).is_err() {
            cut_off = true;
            break;
        }
        // Well-behaved clients are served while the loris trickles.
        if i == 2 {
            assert_still_serving(&server, 1);
        }
        std::thread::sleep(Duration::from_millis(100));
        if start.elapsed() > Duration::from_secs(8) {
            panic!("server kept reading trickled bytes far past frame_timeout");
        }
    }
    if !cut_off {
        // Writes may all land in socket buffers; the cutoff then shows
        // up as EOF/error (or a typed timeout error frame) on read.
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reply = Vec::new();
        let _ = loris.read_to_end(&mut reply);
        if !reply.is_empty() {
            let (opcode, payload) = proto::read_frame(&mut reply.as_slice(), DEFAULT_MAX_FRAME)
                .expect("typed reply")
                .expect("typed reply");
            assert!(matches!(
                Response::decode(opcode, &payload),
                Ok(Response::Error(WireError::Malformed { .. }))
            ));
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "loris held a connection thread for {:?}",
        start.elapsed()
    );
    assert_still_serving(&server, 1);
}

#[test]
fn concurrent_clients_during_background_snapshot() {
    let (docs, patterns) = workload();
    let server = server();
    for chunk in docs.chunks(64) {
        server.insert_batch(chunk).unwrap();
    }
    server.flush();
    let expected: Vec<usize> = patterns.iter().map(|p| server.count(p)).collect();

    let dir = std::env::temp_dir().join(format!("dyndex-serving-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let snapshot = {
        let store = server.store();
        let dir = dir.clone();
        std::thread::spawn(move || {
            store
                .snapshot_with(&dir, SnapshotMode::Background)
                .expect("background snapshot")
        })
    };

    // Remote clients hammer reads while the snapshot freezes and
    // serializes shard by shard on the same worker pool.
    let addr = server.addr();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect during snapshot");
                for _ in 0..10 {
                    for (pattern, &expected) in patterns.iter().zip(&expected) {
                        assert_eq!(client.count(pattern).unwrap(), expected as u64);
                    }
                }
            });
        }
    });

    let stats = snapshot.join().expect("snapshot thread");
    assert_eq!(stats.shards, SHARDS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_shard_is_a_typed_wire_error_while_others_serve() {
    let (docs, _) = workload();
    let server = server();
    for chunk in docs.chunks(64) {
        server.insert_batch(chunk).unwrap();
    }
    let count_before = server.count(b"a") as u64;
    let mut client = Client::connect(server.addr()).expect("connect");

    // A remote duplicate insert is prechecked: typed error, no poison.
    let existing = docs[0].0;
    assert!(matches!(
        client.insert(existing, b"duplicate over the wire"),
        Err(ClientError::Remote(WireError::DuplicateDocument { doc_id })) if doc_id == existing
    ));
    assert_eq!(server.health().status, HealthStatus::Ok);

    // Poison a shard the store-level way: a duplicate insert through
    // the local handle panics the writer mid-update.
    let poisoned_shard = server.shard_of(existing);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = server.insert(existing, b"poison");
    }))
    .expect_err("local duplicate insert panics");

    // Writes to the poisoned shard: typed wire error, connection and
    // server both survive.
    let mut fresh = 1_000_000u64;
    while server.shard_of(fresh) != poisoned_shard {
        fresh += 1;
    }
    assert!(matches!(
        client.insert(fresh, b"refused"),
        Err(ClientError::Remote(WireError::ShardPoisoned { shard })) if shard as usize == poisoned_shard
    ));

    // Writes to healthy shards and reads everywhere keep working on the
    // same connection.
    let mut healthy = 2_000_000u64;
    while server.shard_of(healthy) == poisoned_shard {
        healthy += 1;
    }
    client
        .insert(healthy, b"healthy shard still writes")
        .unwrap();
    // "healthy" and "shard" each contribute one occurrence of "a".
    assert_eq!(client.count(b"a").unwrap(), count_before + 2);

    // Health over the wire names the poisoned shard.
    let (status, detail) = client.health().unwrap();
    assert_eq!(status, RemoteHealth::Degraded);
    assert!(
        detail.contains(&format!("shard {poisoned_shard} poisoned")),
        "{detail:?}"
    );
}

// ----------------------------------------------------------------------
// Backpressure: saturate one shard, assert typed Busy + shed counting.
// ----------------------------------------------------------------------

#[test]
fn saturated_queue_sheds_busy_while_other_shards_complete() {
    const THRESHOLD: usize = 4;
    let (docs, _) = workload();
    let server = server_with(ServeOptions {
        shed_queue_depth: THRESHOLD,
        ..ServeOptions::default()
    });
    for chunk in docs.chunks(64) {
        server.insert_batch(chunk).unwrap();
    }
    server.flush();
    let shed_counter = server
        .metrics()
        .expect("telemetry enabled")
        .find_counter("dyndex_serve_shed_total")
        .expect("shed counter registered");
    assert_eq!(shed_counter.get(), 0);

    // Saturate shard 0's worker queue: one job parks the worker on a
    // channel, THRESHOLD more sit queued behind it. Depth stays exactly
    // THRESHOLD + 1 (queued + busy) until the blocker is released.
    let (release, parked) = mpsc::channel::<()>();
    assert!(server.submit_background_job(
        0,
        Box::new(move || {
            let _ = parked.recv();
        })
    ));
    for _ in 0..THRESHOLD {
        assert!(server.submit_background_job(0, Box::new(|| {})));
    }
    let depth_deadline = Instant::now() + Duration::from_secs(10);
    while server.shard_queue_depth(0) < THRESHOLD {
        assert!(Instant::now() < depth_deadline, "queue never saturated");
        std::thread::yield_now();
    }

    let mut client = Client::connect(server.addr()).expect("connect");

    // Fan-out reads gate on the deepest queue: store-wide Busy.
    match client.count(b"a") {
        Err(ClientError::Busy {
            shard: None,
            queued,
        }) => {
            assert!(queued as usize >= THRESHOLD, "queued={queued}")
        }
        other => panic!("expected store-wide Busy, got {other:?}"),
    }
    // Writes routed to the saturated shard: shard-scoped Busy.
    let mut to_saturated = 3_000_000u64;
    while server.shard_of(to_saturated) != 0 {
        to_saturated += 1;
    }
    match client.insert(to_saturated, b"shed me") {
        Err(ClientError::Busy { shard: Some(0), .. }) => {}
        other => panic!("expected shard-0 Busy, got {other:?}"),
    }
    // Writes routed to other shards complete while shard 0 is wedged.
    let mut to_healthy = 4_000_000u64;
    while server.shard_of(to_healthy) == 0 {
        to_healthy += 1;
    }
    client
        .insert(to_healthy, b"other shards keep serving")
        .unwrap();
    // Stats/Health are never shed — the operator's view stays up.
    let stats = client.stats().unwrap();
    assert!(stats.queued_requests as usize >= THRESHOLD);
    let (status, _) = client.health().unwrap();
    assert_eq!(status, RemoteHealth::Ok);

    assert_eq!(shed_counter.get(), 2, "one shed per Busy response");

    // Release the blocker: the queue drains and service recovers.
    drop(release);
    server.flush();
    assert_eq!(
        client.count(b"other").unwrap(),
        server.count(b"other") as u64
    );
    assert_eq!(shed_counter.get(), 2, "recovered requests are not shed");
}

// ----------------------------------------------------------------------
// Lifecycle: metrics flow into the store registry; shutdown is graceful.
// ----------------------------------------------------------------------

#[test]
fn request_metrics_and_spans_flow_into_store_telemetry() {
    let server = server();
    let registry = server.metrics().expect("telemetry enabled");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.insert(1, b"observed document").unwrap();
    assert_eq!(client.count(b"observed").unwrap(), 1);
    assert_eq!(client.find(b"document").unwrap().len(), 1);

    assert!(registry
        .find_counter("dyndex_serve_connections_total")
        .is_some_and(|c| c.get() >= 1));
    assert!(registry
        .find_counter("dyndex_serve_requests_total")
        .is_some_and(|c| c.get() >= 3));
    assert!(registry
        .find_histogram("dyndex_serve_request_duration")
        .is_some_and(|h| h.snapshot().count() >= 3));

    // Each request left a flight-recorder root span of the serve kind.
    let serve_roots = server
        .flight_spans()
        .into_iter()
        .filter(|span| span.kind == SpanKind::ServeRequest && span.parent == 0)
        .count();
    assert!(serve_roots >= 3, "serve roots recorded: {serve_roots}");

    // The text exposition carries the serving series.
    let rendered = server.render_metrics().expect("telemetry enabled");
    for series in [
        "dyndex_serve_connections_open",
        "dyndex_serve_shed_total",
        "dyndex_serve_proto_errors_total",
    ] {
        assert!(rendered.contains(series), "missing {series}");
    }
}

#[test]
fn drop_shuts_down_gracefully_and_frees_the_port() {
    let server = server();
    server.insert(1, b"shutdown document").unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.count(b"shutdown").unwrap(), 1);
    drop(server);
    // The port is released and the live connection was cut.
    assert!(std::net::TcpListener::bind(addr).is_ok());
    assert!(client.count(b"shutdown").is_err());
}
