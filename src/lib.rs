//! # dyndex
//!
//! A from-scratch Rust implementation of
//! *J. Ian Munro, Yakov Nekrich, Jeffrey Scott Vitter:
//! **Dynamic Data Structures for Document Collections and Graphs***
//! (PODS 2015, arXiv:1503.05977).
//!
//! The paper's contribution is a general framework that converts *static*
//! compressed full-text indexes into *dynamic* ones — supporting document
//! insertion and deletion — without putting a dynamic rank/select
//! structure (and its Fredman–Saks Ω(log n / log log n) lower bound) on
//! the query path. The same framework dynamizes compressed binary
//! relations and directed graphs.
//!
//! ## Crate map
//!
//! * [`succinct`] — bit vectors, rank/select, Elias–Fano, wavelet trees,
//!   the Lemma 2/3 one-bit reporter, dynamic bit/sequence structures.
//! * [`text`] — SA-IS, BWT, FM-index, classical suffix-array index, and a
//!   generalized suffix tree with document deletion (Appendix A.2).
//! * [`core`] — the transformations themselves: deletion-only wrapper
//!   (§2), Transformation 1 (amortized), Transformation 2 (worst-case,
//!   background rebuilding), Transformation 3 (A.4), counting (Thm 1).
//! * [`relations`] — compressed dynamic binary relations (Thm 2) and
//!   directed graphs (Thm 3).
//! * [`store`] — a sharded, concurrent document store over the dynamic
//!   indexes: hash routing, query fan-out on a resident per-shard worker
//!   pool with deterministic merge, batched writes, background
//!   maintenance folded into the same workers.
//! * [`persist`] — durability for the store: a binary codec for every
//!   static structure, crash-atomic snapshot/restore, and per-shard
//!   write-ahead logging (`DurableStore`).
//! * [`serve`] — the network serving layer: a zero-dependency TCP
//!   server speaking a length-prefixed, checksummed binary wire
//!   protocol over the store's worker pool, with queue-depth
//!   backpressure (`Busy` shedding), typed protocol errors, and a
//!   blocking `Client` handle.
//! * [`obs`] — zero-dependency telemetry: lock-free counters/gauges,
//!   mergeable log-bucketed latency histograms, a bounded query tracer,
//!   an always-on flight recorder (hierarchical spans for queries,
//!   rebuilds, snapshots, WAL I/O), a typed health report, a minimal
//!   `std::net` admin HTTP listener, and Prometheus-style text
//!   exposition. The store and persist layers record into it by default
//!   (`Telemetry` policy).
//! * [`baseline`] — prior-art comparators (dynamic-BWT FM-index,
//!   rebuild-from-scratch).
//!
//! How the layers fit together — the layer diagram, the life of a query
//! and an insert through the store's worker pool, the Transformation-2
//! rebuild lifecycle, and the crash-recovery story — is documented in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! ## Quickstart
//!
//! ```
//! use dyndex::prelude::*;
//!
//! // A dynamic collection backed by a compressed FM-index.
//! let mut index: Transform1Index<FmIndexCompressed> =
//!     Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());
//!
//! index.insert(1, b"compressed dynamic indexing");
//! index.insert(2, b"dynamic graphs and relations");
//! assert_eq!(index.count(b"dynamic"), 2);
//!
//! let hits = index.find(b"dynamic");
//! assert_eq!(hits.len(), 2);
//!
//! index.delete(1);
//! assert_eq!(index.count(b"dynamic"), 1);
//! ```

pub use dyndex_baseline as baseline;
pub use dyndex_core as core;
pub use dyndex_obs as obs;
pub use dyndex_persist as persist;
pub use dyndex_relations as relations;
pub use dyndex_serve as serve;
pub use dyndex_store as store;
pub use dyndex_succinct as succinct;
pub use dyndex_text as text;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use dyndex_core::prelude::*;
    pub use dyndex_obs::{
        HealthReason, HealthReport, HealthStatus, MetricsRegistry, QuerySpan, Span, SpanKind,
    };
    pub use dyndex_persist::{
        DurableStore, PersistError, RestoreOptions, SnapshotMode, StorePersist, SyncPolicy,
        WalOptions,
    };
    pub use dyndex_relations::{DynamicGraph, DynamicRelation};
    pub use dyndex_serve::{Client, ClientError, ServeOptions, Server};
    pub use dyndex_store::{
        FanOutPolicy, HealthOptions, MaintenancePolicy, ShardPoisoned, ShardedStore, StoreOptions,
        StoreStats, Telemetry,
    };
    pub use dyndex_succinct::SpaceUsage;
    pub use dyndex_text::Occurrence;
}
