//! Quickstart: a dynamic, compressed document collection.
//!
//! Run with: `cargo run --release --example quickstart`

use dyndex::prelude::*;

fn main() {
    // A fully-dynamic index with amortized updates (Transformation 1 of
    // the paper), backed by a compressed FM-index with locate-sample rate
    // s = 8: space ~ nHk + O(n log n / 8), locate ~ 8 LF steps/occurrence.
    let mut index: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());

    println!("== insert documents ==");
    index.insert(1, b"the quick brown fox jumps over the lazy dog");
    index.insert(2, b"a quick brown dog outpaces a lazy fox");
    index.insert(3, b"pack my box with five dozen liquor jugs");
    println!(
        "docs: {}, symbols: {}",
        index.num_docs(),
        index.symbol_count()
    );

    println!("\n== search ==");
    for pattern in [b"quick".as_slice(), b"lazy", b"fox", b"zebra"] {
        let hits = index.find(pattern);
        println!(
            "{:<8} -> {} occurrence(s): {:?}",
            String::from_utf8_lossy(pattern),
            index.count(pattern),
            hits.iter()
                .map(|o| format!("doc {} @ {}", o.doc, o.offset))
                .collect::<Vec<_>>()
        );
    }

    println!("\n== extract (documents live only inside the index) ==");
    let snippet = index.extract(1, 4, 11).expect("doc 1 exists");
    println!(
        "doc 1, bytes 4..15: {:?}",
        String::from_utf8_lossy(&snippet)
    );

    println!("\n== delete ==");
    index.delete(2);
    println!(
        "after deleting doc 2: count(\"quick\") = {}",
        index.count(b"quick")
    );

    println!("\n== space accounting ==");
    println!(
        "index heap: {} bytes for {} document bytes",
        index.heap_bytes(),
        index.symbol_count()
    );

    // The worst-case variant (Transformation 2) has the same API but
    // rebuilds sub-collections on background threads:
    let mut wc: Transform2Index<FmIndexCompressed> = Transform2Index::new(
        FmConfig { sample_rate: 8 },
        DynOptions::default(),
        RebuildMode::Background,
    );
    for i in 0..100u64 {
        wc.insert(i, format!("background document number {i}").as_bytes());
    }
    println!(
        "\nworst-case index: {} docs, count(\"number\") = {}, {} background jobs",
        wc.num_docs(),
        wc.count(b"number"),
        wc.work().jobs_started
    );
    wc.finish_background_work();
}
