//! Library management — the paper's namesake problem ("the dynamic
//! indexing problem, also known as the library management problem"):
//! maintain a corpus of documents under version churn, where saving a new
//! version of a file replaces the old one (delete + insert), and search
//! must always reflect the current state.
//!
//! Also demonstrates the Transformation 3 preset (Appendix A.4): more,
//! doubling sub-collections — cheaper insertions for update-heavy loads.
//!
//! Run with: `cargo run --release --example versioned_docs`

use dyndex::core::{new_transform3, transform3_options};
use dyndex::prelude::*;

struct VersionedStore {
    index: Transform3Index<FmIndexCompressed>,
    versions: std::collections::HashMap<String, (u64, u32)>,
    next_id: u64,
}

impl VersionedStore {
    fn new() -> Self {
        VersionedStore {
            index: new_transform3(
                FmConfig { sample_rate: 8 },
                transform3_options(DynOptions::default()),
            ),
            versions: std::collections::HashMap::new(),
            next_id: 0,
        }
    }

    /// Saves (or overwrites) a named document; returns its version number.
    fn save(&mut self, name: &str, contents: &[u8]) -> u32 {
        let (old_id, old_ver) = self
            .versions
            .get(name)
            .copied()
            .map_or((None, 0), |(id, v)| (Some(id), v));
        if let Some(id) = old_id {
            self.index.delete(id);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(id, contents);
        self.versions.insert(name.to_string(), (id, old_ver + 1));
        old_ver + 1
    }

    fn remove(&mut self, name: &str) -> bool {
        match self.versions.remove(name) {
            Some((id, _)) => self.index.delete(id).is_some(),
            None => false,
        }
    }

    fn grep(&self, pattern: &str) -> Vec<(String, usize)> {
        let by_id: std::collections::HashMap<u64, &str> = self
            .versions
            .iter()
            .map(|(name, &(id, _))| (id, name.as_str()))
            .collect();
        let mut hits: Vec<(String, usize)> = self
            .index
            .find(pattern.as_bytes())
            .into_iter()
            .map(|o| (by_id[&o.doc].to_string(), o.offset))
            .collect();
        hits.sort();
        hits
    }
}

fn main() {
    let mut store = VersionedStore::new();

    println!("== initial checkins ==");
    store.save("readme.md", b"dyndex: dynamic compressed document indexes");
    store.save(
        "design.md",
        b"transformations convert static indexes into dynamic ones",
    );
    store.save(
        "todo.txt",
        b"write more tests; benchmark the transformations",
    );
    for (name, offset) in store.grep("dynamic") {
        println!("  dynamic @ {name}:{offset}");
    }

    println!("\n== overwrite a file: search reflects only the newest version ==");
    let v = store.save("todo.txt", b"ship the dynamic benchmarks");
    println!("  todo.txt now at version {v}");
    for (name, offset) in store.grep("dynamic") {
        println!("  dynamic @ {name}:{offset}");
    }
    assert!(
        store.grep("more tests").is_empty(),
        "old version must be gone"
    );

    println!("\n== heavy churn: hundreds of edits ==");
    for round in 0..200u32 {
        let body = format!("draft {round}: the quick brown fox edits files repeatedly");
        store.save("draft.txt", body.as_bytes());
    }
    let hits = store.grep("draft 199");
    println!("  grep 'draft 199' -> {hits:?}");
    assert_eq!(hits.len(), 1);
    assert!(store.grep("draft 198").is_empty());

    println!("\n== delete ==");
    store.remove("draft.txt");
    assert!(store.grep("draft").is_empty());
    println!("  draft.txt removed; {} files remain", store.versions.len());
    println!(
        "  index: {} docs / {} bytes, heap {} bytes",
        store.index.num_docs(),
        store.index.symbol_count(),
        store.index.heap_bytes()
    );
}
