//! Sharded store: concurrent search over a hash-partitioned collection.
//!
//! Run with: `cargo run --release --example sharded_search`
//!
//! Demonstrates the `dyndex-store` layer: documents hash-route across
//! shards (each an independent Transformation-2 index), writes batch by
//! shard, queries fan out to one resident worker per shard and merge
//! deterministically, and the same workers install background rebuilds
//! off the query path between requests.

use dyndex::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn main() {
    let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
        FmConfig { sample_rate: 8 },
        StoreOptions {
            num_shards: 4,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
            // Opt-in admin endpoint on an ephemeral port: curl
            // /metrics, /health, /spans, /slow while the store runs.
            admin: Some("127.0.0.1:0".to_string()),
            ..StoreOptions::default()
        },
    );

    println!("== batched load across {} shards ==", store.num_shards());
    let services = ["auth", "billing", "search", "ingest"];
    let verbs = ["started", "completed", "failed", "retried"];
    let batch: Vec<(u64, Vec<u8>)> = (0..2_000u64)
        .map(|i| {
            let line = format!(
                "ts={i:06} service={} request {} user u{:03}",
                services[i as usize % services.len()],
                verbs[(i / 3) as usize % verbs.len()],
                i % 100,
            );
            (i, line.into_bytes())
        })
        .collect();
    for chunk in batch.chunks(128) {
        store.insert_batch(chunk).expect("insert batch");
    }
    println!(
        "loaded {} docs / {} bytes; {} rebuild jobs pending (workers drain them)",
        store.num_docs(),
        store.symbol_count(),
        store.pending_background_jobs()
    );

    println!("\n== parallel fan-out queries (readers on their own threads) ==");
    let queries = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (store, queries) = (&store, &queries);
        for pattern in ["service=auth", "failed", "user u042"] {
            scope.spawn(move || {
                let hits = store.count(pattern.as_bytes());
                let first = store.find_limit(pattern.as_bytes(), 3);
                queries.fetch_add(1, Ordering::Relaxed);
                println!(
                    "{pattern:<14} -> {hits} hit(s); first {} (sorted): {:?}",
                    first.len(),
                    first
                        .iter()
                        .map(|o| format!("doc {} @ {}", o.doc, o.offset))
                        .collect::<Vec<_>>()
                );
            });
        }
    });
    assert_eq!(queries.load(Ordering::Relaxed), 3);

    println!("\n== churn: drop completed requests, keep querying ==");
    let doomed: Vec<u64> = (0..2_000u64).filter(|i| (i / 3) % 4 == 1).collect();
    let removed = store.delete_batch(&doomed).expect("delete batch");
    println!(
        "deleted {removed} docs; count(\"completed\") = {}",
        store.count(b"completed")
    );

    store.finish_background_work();
    println!("\n== per-shard census ==");
    let stats = store.stats();
    for shard in &stats.shards {
        println!(
            "shard {}: {:>4} docs, {:>6} bytes, {} pending job(s), {} structures",
            shard.shard,
            shard.docs,
            shard.symbols,
            shard.pending_jobs,
            shard.levels.len()
        );
    }
    println!("dashboard: {stats}");
    println!(
        "workers installed {} job(s) between requests, heap {} bytes",
        store.pool_installs(),
        store.heap_bytes()
    );

    println!("\n== telemetry: spans, percentiles, text exposition ==");
    // Telemetry is on by default; every query above left a span in the
    // tracer and a sample in the latency histograms.
    for span in store.recent_spans().iter().rev().take(3) {
        println!("span: {span}");
    }
    let registry = store.metrics().expect("telemetry on by default");
    let latency = registry
        .find_histogram("dyndex_store_query_duration")
        .expect("registered at construction")
        .snapshot();
    println!(
        "query latency over {} queries: p50 {} ns | p99 {} ns | max {} ns",
        latency.count(),
        latency.percentile(0.50),
        latency.percentile(0.99),
        latency.max()
    );
    let exposition = store.render_metrics().expect("telemetry on by default");
    println!(
        "render_metrics(): {} lines of Prometheus-style text, e.g.:",
        exposition.lines().count()
    );
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("dyndex_store_docs"))
    {
        println!("  {line}");
    }

    println!("\n== flight recorder, health report, admin endpoint ==");
    // Every query above also left a span tree in the flight recorder:
    // the query root plus per-shard queue-wait/execute children, each
    // execute stamped with the view epoch the worker served from.
    let spans = store.flight_spans();
    if let Some(root) = spans.iter().rev().find(|s| s.parent == 0 && s.id != 0) {
        println!("flight span tree for one query:");
        println!("  {root}");
        for child in spans.iter().filter(|s| s.parent == root.id).take(4) {
            println!("    {child}");
        }
    }
    let health = store.health();
    println!("health: {health}");
    let addr = store.admin_addr().expect("admin endpoint opted in above");
    println!("admin endpoint live at http://{addr} — e.g.:");
    println!("  curl http://{addr}/metrics   # Prometheus text");
    println!("  curl http://{addr}/health    # ok | degraded: ...");
    println!("  curl http://{addr}/spans     # span trees");

    println!("\n== serve the store over TCP ==");
    // The serving layer wraps any ShardedStore behind a binary wire
    // protocol; requests ride the same worker-pool fan-out as the local
    // calls above, and overload sheds with typed Busy replies instead
    // of queueing behind a wedged shard.
    {
        let server: Server<FmIndexCompressed> = Server::create(
            FmConfig { sample_rate: 8 },
            StoreOptions {
                num_shards: 4,
                ..StoreOptions::default()
            },
            ServeOptions::default(),
        )
        .expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");
        for (id, line) in batch.iter().take(200) {
            client.insert(*id, line).expect("remote insert");
        }
        // The server derefs to its store, so local and remote answers
        // come from the same shards and must agree exactly.
        println!(
            "server at {}: remote count(\"service=auth\") = {} (local said {})",
            server.addr(),
            client.count(b"service=auth").expect("remote count"),
            server.count(b"service=auth"),
        );
        let hits = client.find_limit(b"user u042", 3).expect("remote find");
        println!("remote find_limit(\"user u042\", 3) -> {hits:?} as (doc, offset)");
        let (status, detail) = client.health().expect("remote health");
        println!("remote health: {status:?} ({detail})");
        // Dropping the server closes the port and every open connection.
    }

    println!("\n== snapshot to disk, restore in a fresh store ==");
    let dir = std::env::temp_dir().join(format!("dyndex-sharded-search-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snap = store.snapshot(&dir).expect("snapshot");
    println!(
        "snapshot generation {} wrote {} shard file(s), {} bytes on disk",
        snap.generation, snap.shards, snap.bytes_on_disk
    );
    let restored: ShardedStore<FmIndexCompressed> =
        ShardedStore::restore(&dir, RestoreOptions::default()).expect("restore");
    assert_eq!(
        restored.count(b"service=auth"),
        store.count(b"service=auth")
    );
    assert_eq!(restored.find(b"failed"), store.find(b"failed"));
    println!(
        "restored store answers identically: count(\"service=auth\") = {}",
        restored.count(b"service=auth")
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
