//! RDF triples as dynamic relations and graphs — the paper's §1 example:
//!
//! > "the set of subject-predicate-object RDF triples can be represented
//! >  as a graph or as two binary relations […] given x, enumerate all
//! >  the triples in which x occurs as a subject; given x and p,
//! >  enumerate all triples in which x occurs as a subject and p occurs
//! >  as a predicate."
//!
//! We store a small evolving knowledge base as (a) one relation per
//! predicate (subject ↔ object) and (b) a subject→object link graph, and
//! run exactly those queries under updates.
//!
//! Run with: `cargo run --release --example rdf_store`

use dyndex::prelude::*;
use std::collections::HashMap;

// Compact entity dictionary: name -> u64 id.
struct Dict {
    ids: HashMap<&'static str, u64>,
    names: Vec<&'static str>,
}

impl Dict {
    fn new() -> Self {
        Dict {
            ids: HashMap::new(),
            names: Vec::new(),
        }
    }
    fn id(&mut self, name: &'static str) -> u64 {
        if let Some(&i) = self.ids.get(name) {
            return i;
        }
        let i = self.names.len() as u64;
        self.ids.insert(name, i);
        self.names.push(name);
        i
    }
    fn name(&self, id: u64) -> &'static str {
        self.names[id as usize]
    }
}

fn main() {
    let mut dict = Dict::new();
    // One dynamic relation per predicate (the paper's "two binary
    // relations" decomposition of a triple store), plus one link graph.
    let mut by_predicate: HashMap<&'static str, DynamicRelation> = HashMap::new();
    let mut links = DynamicGraph::new(DynOptions::default());

    let triples: &[(&'static str, &'static str, &'static str)] = &[
        ("munro", "authored", "pods15-paper"),
        ("nekrich", "authored", "pods15-paper"),
        ("vitter", "authored", "pods15-paper"),
        ("pods15-paper", "cites", "fredman-saks89"),
        ("pods15-paper", "cites", "bentley-saxe80"),
        ("pods15-paper", "cites", "dietz-sleator87"),
        ("munro", "affiliated", "waterloo"),
        ("nekrich", "affiliated", "waterloo"),
        ("vitter", "affiliated", "kansas"),
        ("dyndex", "implements", "pods15-paper"),
        ("dyndex", "written-in", "rust"),
    ];
    for &(s, p, o) in triples {
        let (si, oi) = (dict.id(s), dict.id(o));
        by_predicate
            .entry(p)
            .or_insert_with(|| DynamicRelation::new(DynOptions::default()))
            .insert(si, oi);
        links.add_edge(si, oi);
    }

    println!("== triples in which `pods15-paper` occurs as subject+predicate `cites` ==");
    let paper = dict.id("pods15-paper");
    for o in by_predicate["cites"].labels_of(paper) {
        println!("  pods15-paper --cites--> {}", dict.name(o));
    }

    println!("\n== all triples with subject `munro` (any predicate) ==");
    let munro = dict.id("munro");
    for (p, rel) in &by_predicate {
        for o in rel.labels_of(munro) {
            println!("  munro --{}--> {}", p, dict.name(o));
        }
    }

    println!("\n== reverse query: who authored pods15-paper? ==");
    for s in by_predicate["authored"].objects_of(paper) {
        println!("  {} --authored--> pods15-paper", dict.name(s));
    }

    println!("\n== graph view ==");
    println!(
        "  out-degree(pods15-paper) = {}, in-degree(pods15-paper) = {}",
        links.out_degree(paper),
        links.in_degree(paper)
    );
    println!(
        "  adjacency(dyndex -> pods15-paper) = {}",
        links.has_edge(dict.id("dyndex"), paper)
    );

    println!("\n== updates: retract and assert ==");
    by_predicate
        .get_mut("affiliated")
        .expect("exists")
        .delete(dict.id("vitter"), dict.id("kansas"));
    let by_aff = &by_predicate["affiliated"];
    println!(
        "  after retraction, affiliations of vitter: {:?}",
        by_aff.labels_of(dict.id("vitter"))
    );
    println!(
        "  waterloo is affiliated with {} researchers",
        by_aff.count_objects(dict.id("waterloo"))
    );
    links.remove_node(dict.id("vitter"));
    println!(
        "  after removing node vitter: {} edges remain in the link graph",
        links.num_edges()
    );
}
