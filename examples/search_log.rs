//! Search-log analytics — the paper's §1 motivating example:
//!
//! > "Suppose that we keep a search log and want to find out how many
//! >  times URLs containing a certain substring were accessed."
//!
//! We maintain a rolling window of log batches (each batch = one
//! document) in a dynamic compressed index: new batches arrive, old
//! batches expire, and substring counting stays fast throughout — the
//! counting machinery of Theorem 1.
//!
//! Run with: `cargo run --release --example search_log`

use dyndex::prelude::*;

/// Deterministic synthetic log batch: one URL access per line.
fn make_batch(day: u64) -> Vec<u8> {
    let hosts = [
        "example.org",
        "shop.example.com",
        "api.example.io",
        "blog.example.org",
    ];
    let paths = [
        "/index",
        "/cart/checkout",
        "/v2/search",
        "/articles/dyndex",
        "/login",
    ];
    let mut out = Vec::new();
    let mut state = day.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for _ in 0..40 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let h = hosts[(state % hosts.len() as u64) as usize];
        let p = paths[((state >> 8) % paths.len() as u64) as usize];
        out.extend_from_slice(format!("GET https://{h}{p}?day={day}\n").as_bytes());
    }
    out
}

fn main() {
    let mut index: Transform2Index<FmIndexCompressed> = Transform2Index::new(
        FmConfig { sample_rate: 16 },
        DynOptions::default(),
        RebuildMode::Background,
    );

    const WINDOW: u64 = 14; // keep two weeks of logs
    println!("rolling {WINDOW}-day window of synthetic access logs\n");
    for day in 0..60u64 {
        index.insert(day, &make_batch(day));
        if day >= WINDOW {
            index.delete(day - WINDOW); // expire the oldest batch
        }
        if day % 15 == 14 {
            println!(
                "day {day}: window holds {} batches, {} bytes",
                index.num_docs(),
                index.symbol_count()
            );
            for needle in ["checkout", "example.org", "/v2/", "dyndex"] {
                println!(
                    "  accesses matching {needle:<14} {:>6}",
                    index.count(needle.as_bytes())
                );
            }
        }
    }

    // Drill-down: which batches contain a pattern, and where.
    let hits = index.find(b"/cart/checkout");
    let mut days: Vec<u64> = hits.iter().map(|o| o.doc).collect();
    days.sort_unstable();
    days.dedup();
    println!(
        "\n\"/cart/checkout\" occurs {} times across days {:?}",
        hits.len(),
        days
    );
    println!(
        "background jobs: {} started / {} completed, forced waits: {}",
        index.work().jobs_started,
        index.work().jobs_completed,
        index.work().forced_waits
    );
    index.finish_background_work();
}
